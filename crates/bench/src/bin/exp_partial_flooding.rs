//! E4 — partial flooding in the models without edge regeneration.
//!
//! Table 1's positive flooding cell without regeneration (Theorems 3.8 /
//! 4.13): coverage within an `O(log n / log d)` round budget.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `partial-flooding` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_partial_flooding [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["partial-flooding"]);
}
