//! E4 — Partial flooding in the models without edge regeneration.
//!
//! Reproduces the positive flooding cell of Table 1 for SDG/PDG (Theorem 3.8
//! and Theorem 4.13): with high probability in `d`, flooding informs a fraction
//! `1 − e^{−Ω(d)}` of the nodes within `O(log n)` rounds, even though it cannot
//! complete (E3). The table reports, per `(model, n, d)`, the coverage reached
//! within a logarithmic round budget and how often the paper's target fraction
//! was met.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_partial_flooding [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_sim::{aggregate_by_point, run_sweep, PointKey, Sweep, Table};

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512, 1_024], vec![1_024, 4_096, 16_384]);
    let degrees = vec![8usize, 12, 16, 24];
    let trials = preset.pick(5, 12);

    let sweep = Sweep::new("E4-partial-flooding")
        .models([ModelKind::Sdg, ModelKind::Pdg])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE4);

    #[derive(Clone)]
    struct Measurement {
        coverage: f64,
        reached_target: bool,
        rounds_to_target: Option<u64>,
        budget: u64,
    }

    let results = run_sweep(&sweep, |ctx| {
        let n = ctx.point.n;
        let d = ctx.point.d;
        let target = theory::partial_flooding_fraction(d, ctx.point.model.is_streaming());
        // O(log n / log d) + O(d) rounds, with a generous constant.
        let budget = (6.0 * (n as f64).log2() / (d as f64).log2().max(1.0)).ceil() as u64
            + 2 * d as u64
            + 10;
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig {
                max_rounds: budget,
                target_fraction: None,
                stop_when_complete: true,
            },
        );
        Measurement {
            coverage: record.final_fraction(),
            reached_target: record.final_fraction() >= target || record.outcome.is_complete(),
            rounds_to_target: record.rounds_to_fraction(target),
            budget,
        }
    });

    let coverage = aggregate_by_point(&results, |r| r.value.coverage);

    let mut table = Table::new(
        "E4 — coverage of partial flooding within an O(log n) round budget",
        [
            "model",
            "n",
            "d",
            "target fraction (paper)",
            "mean coverage",
            "P(target reached)",
            "mean rounds to target",
            "round budget",
        ],
    );
    let mut comparisons = ComparisonSet::new("E4 — Theorem 3.8 / Theorem 4.13");

    for point in sweep.points() {
        let key: PointKey = point.into();
        let point_results: Vec<&Measurement> = results
            .iter()
            .filter(|r| r.point == point)
            .map(|r| &r.value)
            .collect();
        let target = theory::partial_flooding_fraction(point.d, point.model.is_streaming());
        let success = point_results.iter().filter(|m| m.reached_target).count() as f64
            / point_results.len() as f64;
        let rounds: Vec<f64> = point_results
            .iter()
            .filter_map(|m| m.rounds_to_target.map(|r| r as f64))
            .collect();
        let mean_rounds = if rounds.is_empty() {
            f64::NAN
        } else {
            rounds.iter().sum::<f64>() / rounds.len() as f64
        };
        let budget = point_results.first().map_or(0, |m| m.budget);

        table.push_row([
            point.model.label().to_string(),
            point.n.to_string(),
            point.d.to_string(),
            format!("{target:.3}"),
            coverage[&key].display_with_ci(3),
            format!("{success:.2}"),
            if mean_rounds.is_nan() {
                "-".to_string()
            } else {
                format!("{mean_rounds:.1}")
            },
            budget.to_string(),
        ]);

        let reference = if point.model.is_streaming() {
            "Theorem 3.8"
        } else {
            "Theorem 4.13"
        };
        comparisons.push(
            Comparison::new(
                format!("coverage >= 1 - e^(-Ω(d)) within O(log n), {point}"),
                reference,
                format!(">= {target:.3} for most runs"),
                format!(
                    "mean coverage {:.3}, success rate {success:.2}",
                    coverage[&key].mean
                ),
                success >= 0.5 && coverage[&key].mean >= target - 0.05,
            )
            .with_note(
                "the paper's constants require d >= 200 (streaming) / 1152 (Poisson); \
                 the qualitative behaviour already appears at the degrees used here",
            ),
        );
    }

    print_report(
        "E4 — partial flooding without edge regeneration",
        "Table 1 (flooding positive results without regeneration); Theorems 3.8 and 4.13",
        preset,
        &[table],
        &[comparisons],
    );
}
