//! E6 — Flooding-time scaling figure for the models with edge regeneration.
//!
//! Reproduces the `O(log n)` flooding-time claims of Theorems 3.16 (SDGR) and
//! 4.20 (PDGR) as a scaling series: mean flooding completion time versus `n`
//! over a geometric grid of network sizes, together with the fitted
//! `a + b·log₂ n` curve and a logarithmic-vs-linear shape classification. This
//! is the workspace's "figure" counterpart of Table 1's bottom-right cell.
//!
//! ```text
//! cargo run --release -p churn-bench --bin fig_flooding_scaling [quick]
//! ```

use churn_analysis::{classify_scaling, fit_logarithmic, Comparison, ComparisonSet, ScalingClass};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::flooding::{run_flooding_parallel, FloodingConfig, FloodingSource};
use churn_core::{DynamicNetwork, ModelKind};
use churn_sim::{aggregate_by_point, run_sweep, PointKey, Sweep, Table};

fn main() {
    let preset = preset_from_env_and_args();
    // The full grid now reaches n = 10^6: the sharded parallel frontier
    // engine keeps a single flooding run tractable there, and the sweep-level
    // thread budget (ctx.threads) keeps the two parallelism levels from
    // oversubscribing the machine.
    let sizes: Vec<usize> = preset.pick(
        vec![256, 512, 1_024, 2_048],
        vec![
            256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 65_536, 262_144, 1_048_576,
        ],
    );
    let degrees = vec![8usize, 21];
    let trials = preset.pick(3, 6);

    let sweep = Sweep::new("E6-flooding-scaling")
        .models([ModelKind::Sdgr, ModelKind::Pdgr])
        .sizes(sizes.clone())
        .degrees(degrees.clone())
        .trials(trials)
        .base_seed(0xE6);

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let record = run_flooding_parallel(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
            ctx.threads,
        );
        match record.outcome.rounds() {
            Some(rounds) if record.outcome.is_complete() => rounds as f64,
            _ => f64::NAN, // should not happen for the regeneration models
        }
    });

    let grouped = aggregate_by_point(&results, |r| r.value);

    let mut table = Table::new(
        "E6 — flooding completion time (rounds, mean ± 95% CI)",
        ["model", "d", "n", "log2 n", "flooding time"],
    );
    let mut comparisons = ComparisonSet::new("E6 — Theorem 3.16 / Theorem 4.20");

    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        for &d in &degrees {
            let mut series: Vec<(f64, f64)> = Vec::new();
            for &n in &sizes {
                let key = PointKey {
                    model: kind.label().to_string(),
                    n,
                    d,
                };
                let agg = grouped[&key];
                series.push((n as f64, agg.mean));
                table.push_row([
                    kind.label().to_string(),
                    d.to_string(),
                    n.to_string(),
                    format!("{:.1}", (n as f64).log2()),
                    agg.display_with_ci(2),
                ]);
            }

            let class = classify_scaling(&series);
            let fit = fit_logarithmic(&series);
            let reference = if kind.is_streaming() {
                "Theorem 3.16"
            } else {
                "Theorem 4.20"
            };
            let (slope, r2) = fit.map_or((f64::NAN, f64::NAN), |f| (f.slope(), f.r_squared()));
            comparisons.push(
                Comparison::new(
                    format!("flooding time scaling, {kind} d={d}"),
                    reference,
                    "O(log n): logarithmic growth, never linear".to_string(),
                    format!(
                        "fit {:.2} + {:.2}·log2 n (R² = {:.3}); shape: {class}",
                        fit.map_or(f64::NAN, |f| f.fit.intercept),
                        slope,
                        r2
                    ),
                    class != ScalingClass::Linear && slope >= 0.0,
                )
                .with_note(format!("series over n = {sizes:?}")),
            );
        }
    }

    print_report(
        "E6 — flooding time is logarithmic with edge regeneration (figure series)",
        "Table 1 (flooding with edge regeneration); Theorems 3.16 and 4.20",
        preset,
        &[table],
        &[comparisons],
    );
}
