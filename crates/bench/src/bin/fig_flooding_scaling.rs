//! E6 — flooding-time scaling figure for the models with edge regeneration.
//!
//! The `O(log n)` flooding-time series of Theorems 3.16 / 4.20, up to
//! `n = 10^6` on the full preset.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `flooding-scaling` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin fig_flooding_scaling [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["flooding-scaling"]);
}
