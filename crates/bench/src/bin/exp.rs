//! The single experiment runner over the scenario registry.
//!
//! ```text
//! exp list                          # registered scenarios (+ series support)
//! exp run <name> [<name>…]         # run scenarios (full preset)
//! exp run --all                    # run every registered scenario
//!   --smoke                        # tiny-n smoke grids (CI runs this per PR)
//!   --resume                       # skip cells already in the checkpoint
//!   --series                       # record per-round series + phase profiles
//!   --out <dir>                    # output directory (default: results/)
//! exp report <name> [<name>…]      # regenerate the verdict report from the
//!   [--smoke] [--out <dir>]        # stored records — no cell is re-run
//! ```
//!
//! Every run streams one JSON record per completed cell to
//! `<out>/<name>.jsonl` (`.smoke.jsonl` on the smoke preset). Cells already
//! present in the file are skipped under `--resume`; because cell identity
//! is the deterministic per-cell seed and every engine is thread-count
//! independent, a resumed file is bit-identical to an uninterrupted run.
//!
//! Runs keep going past trouble: a panicking cell is caught and recorded in
//! the scenario's `.failures.jsonl` side file, the rest of the grid (and
//! every later scenario of a multi-scenario invocation) still runs, and the
//! process exits non-zero after printing an end-of-run failure summary —
//! `--resume` then retries exactly the failed cells.

use std::path::PathBuf;
use std::process::ExitCode;

use churn_bench::{scenarios, Preset};
use churn_sim::scenario::{scenario_series_path, GridPreset, RunOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: exp list\n       exp run <name>… | --all  [--smoke] [--resume] [--series] [--out <dir>]\n       exp report <name>… | --all  [--smoke] [--out <dir>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = scenarios::registry();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<22} {:<21} {:>5} {:>5} {:<6}  title",
                "name", "measurement", "full", "smoke", "series"
            );
            let full_opts = RunOptions::default();
            let smoke_opts = RunOptions {
                preset: GridPreset::Smoke,
                ..RunOptions::default()
            };
            for scenario in registry.scenarios() {
                // "series" column: `-` when the measurement has no per-round
                // output, `yes` when `--series` would record one, `disk` when
                // a .series.jsonl file from an earlier run is present.
                let series = if !scenario.measurement().supports_series() {
                    "-"
                } else if scenario_series_path(scenario, &full_opts).exists()
                    || scenario_series_path(scenario, &smoke_opts).exists()
                {
                    "disk"
                } else {
                    "yes"
                };
                println!(
                    "{:<22} {:<21} {:>5} {:>5} {:<6}  {}",
                    scenario.name(),
                    scenario.measurement().kind(),
                    scenario.cells(GridPreset::Full).len(),
                    scenario.cells(GridPreset::Smoke).len(),
                    series,
                    scenario.title()
                );
                if scenario.has_fault_axis() {
                    let labels: Vec<String> = scenario
                        .fault_axis()
                        .iter()
                        .map(churn_sim::scenario::FaultSpec::label)
                        .collect();
                    println!(
                        "{:<22} {:<21} {:>5} {:>5} {:<6}  faults: {}",
                        "",
                        "",
                        "",
                        "",
                        "",
                        labels.join(", ")
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let mut names: Vec<String> = Vec::new();
            let mut all = false;
            let mut opts = RunOptions::default();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--all" => all = true,
                    "--smoke" => opts.preset = GridPreset::Smoke,
                    "--resume" => opts.resume = true,
                    "--series" => opts.series = true,
                    "--out" => match rest.next() {
                        Some(dir) => opts.dir = PathBuf::from(dir),
                        None => return usage(),
                    },
                    name if !name.starts_with('-') => names.push(name.to_string()),
                    _ => return usage(),
                }
            }
            if all {
                names = registry.names().into_iter().map(str::to_string).collect();
            }
            if names.is_empty() {
                return usage();
            }
            for name in &names {
                if registry.get(name).is_none() {
                    eprintln!("unknown scenario {name:?}; `exp list` shows the registry");
                    return ExitCode::FAILURE;
                }
            }
            let mut failures: Vec<(String, usize)> = Vec::new();
            let mut shed: Vec<(String, usize)> = Vec::new();
            for name in &names {
                let outcome = scenarios::run_and_report(&registry, name, &opts);
                // Retry-budget exhaustion is in-band graceful degradation:
                // the cell completed and recorded how many repairs it shed.
                // Keep it out of the exit code but visible in the summary.
                let exhausted = outcome
                    .records
                    .iter()
                    .filter(|r| r.metric("retries_exhausted").is_some_and(|v| v > 0.0))
                    .count();
                if exhausted > 0 {
                    shed.push((name.clone(), exhausted));
                }
                if !outcome.failures.is_empty() {
                    failures.push((name.clone(), outcome.failures.len()));
                }
            }
            if !failures.is_empty() || !shed.is_empty() {
                eprintln!("failure summary:");
                for (name, count) in &shed {
                    eprintln!(
                        "  {name}: {count} cell(s) exhausted a retry budget \
                         (in-band: completed, shed repairs counted in `retries_exhausted`)"
                    );
                }
                for (name, count) in &failures {
                    eprintln!(
                        "  {name}: {count} cell(s) panicked (see the .failures.jsonl side file)"
                    );
                }
            }
            if failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("rerun with --resume to retry exactly the failed cells");
                ExitCode::FAILURE
            }
        }
        Some("report") => {
            let mut names: Vec<String> = Vec::new();
            let mut all = false;
            let mut opts = RunOptions::default();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--all" => all = true,
                    "--smoke" => opts.preset = GridPreset::Smoke,
                    "--out" => match rest.next() {
                        Some(dir) => opts.dir = PathBuf::from(dir),
                        None => return usage(),
                    },
                    name if !name.starts_with('-') => names.push(name.to_string()),
                    _ => return usage(),
                }
            }
            if all {
                names = registry.names().into_iter().map(str::to_string).collect();
            }
            if names.is_empty() {
                return usage();
            }
            let preset = match opts.preset {
                GridPreset::Smoke => Preset::Quick,
                GridPreset::Full => Preset::Full,
            };
            let mut failed = false;
            for name in &names {
                match scenarios::report_from_disk(&registry, name, &opts) {
                    Ok(report) => {
                        let title = registry
                            .get(name)
                            .map_or_else(|| name.clone(), |s| s.title().to_string());
                        let artifact = registry
                            .get(name)
                            .map_or("", |s| s.reproduced_artifact())
                            .to_string();
                        churn_bench::print_report(
                            &title,
                            &artifact,
                            preset,
                            &report.tables,
                            std::slice::from_ref(&report.comparisons),
                        );
                        if !report.all_hold() {
                            failed = true;
                        }
                    }
                    Err(message) => {
                        eprintln!("report {name}: {message}");
                        failed = true;
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
