//! E12 — adversarial churn: oblivious vs adaptive death schedules.
//!
//! The robustness question of the RAES line of work: the same death budget
//! spent adversarially (oldest-first / highest-degree victims).
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `adversarial-churn` and `adversarial-churn-1m` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_adversarial_churn [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["adversarial-churn", "adversarial-churn-1m"]);
}
