//! E12 — Adversarial churn: oblivious vs adaptive death schedules.
//!
//! The paper's churn is *oblivious* — deaths hit uniformly random nodes
//! (Definition 4.1). This experiment spends the same death budget
//! adversarially through the shared `churn_core::driver` victim selectors
//! (`VictimPolicy`, selectable per sweep via `Sweep::victim_policy`):
//!
//! * **oldest-first** — kill the node whose links have decayed the longest
//!   (for PDG, the nodes closest to isolation);
//! * **highest-degree** — kill the best-connected node, the hubs flooding
//!   rides on.
//!
//! Measured per cell: the isolated fraction of the warm network and the
//! flooding completion behaviour. The qualitative expectation: without
//! regeneration (PDG) the adversary amplifies isolation and can starve
//! flooding; with regeneration (PDGR) the instant repair keeps flooding
//! completing regardless of the schedule — the same robustness the RAES
//! protocol line aims for with *bounded* degrees.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_adversarial_churn [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use churn_core::{DynamicNetwork, ModelKind, VictimPolicy};
use churn_observe::LiveMetrics;
use churn_sim::{aggregate_by_point, run_sweep, PointKey, Sweep, Table};

#[derive(Clone)]
struct Measurement {
    isolated_fraction: f64,
    completed: bool,
    rounds: f64,
    final_fraction: f64,
}

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![256], vec![512, 1_024]);
    let degrees = vec![4usize, 8];
    let trials = preset.pick(3, 6);
    let policies = [
        VictimPolicy::Uniform,
        VictimPolicy::OldestFirst,
        VictimPolicy::HighestDegree,
    ];

    let mut table = Table::new(
        "E12 — isolated fraction and flooding under adversarial death schedules",
        [
            "policy",
            "model",
            "n",
            "d",
            "isolated fraction",
            "flooding completed",
            "rounds (mean)",
            "final informed fraction",
        ],
    );
    let mut comparisons = ComparisonSet::new("E12 — adaptive-adversary robustness");
    let mut isolated_by_policy: Vec<(VictimPolicy, usize, f64)> = Vec::new();

    for policy in policies {
        let sweep = Sweep::new(format!("E12-adversarial-{policy}"))
            .models([ModelKind::Pdg, ModelKind::Pdgr])
            .sizes(sizes.clone())
            .degrees(degrees.clone())
            .trials(trials)
            .base_seed(0xE12)
            .victim_policy(policy);

        let results = run_sweep(&sweep, |ctx| {
            let mut model = ctx.build_model().expect("poisson accepts any policy");
            model.warm_up();
            let metrics = LiveMetrics::new(model.graph());
            let isolated_fraction =
                metrics.isolated_count() as f64 / model.alive_count().max(1) as f64;
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::with_max_rounds(200),
            );
            Measurement {
                isolated_fraction,
                completed: record.outcome.is_complete(),
                rounds: record.rounds_elapsed() as f64,
                final_fraction: record.final_fraction(),
            }
        });

        let isolated = aggregate_by_point(&results, |r| r.value.isolated_fraction);
        let completed = aggregate_by_point(&results, |r| f64::from(u8::from(r.value.completed)));
        let rounds = aggregate_by_point(&results, |r| r.value.rounds);
        let informed = aggregate_by_point(&results, |r| r.value.final_fraction);

        for point in sweep.points() {
            let key: PointKey = point.into();
            table.push_row([
                policy.to_string(),
                point.model.label().to_string(),
                point.n.to_string(),
                point.d.to_string(),
                isolated[&key].display_with_ci(4),
                format!("{:.0}/{trials}", completed[&key].mean * trials as f64),
                format!("{:.1}", rounds[&key].mean),
                format!("{:.3}", informed[&key].mean),
            ]);
            if point.model == ModelKind::Pdg && point.d == 4 {
                isolated_by_policy.push((policy, point.n, isolated[&key].mean));
            }
            if point.model.edge_policy().regenerates() {
                comparisons.push(
                    Comparison::new(
                        format!("PDGR flooding under {policy} churn, {point}"),
                        "Theorem 4.20 (regeneration repairs any schedule)",
                        "broadcast reaches (almost) the whole network".to_string(),
                        format!(
                            "completed {:.0}/{trials}, final fraction {:.3}",
                            completed[&key].mean * trials as f64,
                            informed[&key].mean
                        ),
                        informed[&key].mean >= 0.9,
                    )
                    .with_note("adaptive adversary, same death budget as the oblivious model"),
                );
            }
        }
    }

    // Directional observation on the PDG (no-regeneration) cells: killing
    // hubs or the oldest nodes should isolate at least as much as oblivious
    // churn does. Each adversarial cell is compared against the uniform
    // baseline of the *same* network size.
    for &(policy, n, value) in &isolated_by_policy {
        if policy == VictimPolicy::Uniform {
            continue;
        }
        let Some(&(_, _, uniform)) = isolated_by_policy
            .iter()
            .find(|&&(p, pn, _)| p == VictimPolicy::Uniform && pn == n)
        else {
            continue;
        };
        comparisons.push(
            Comparison::new(
                format!("PDG isolation amplification under {policy} (n = {n}, d = 4)"),
                "adaptive vs oblivious churn",
                "isolated fraction >= 0.75 × uniform".to_string(),
                format!("{value:.4} vs uniform {uniform:.4}"),
                value >= 0.75 * uniform,
            )
            .with_note("mean over the d = 4 trials at this size"),
        );
    }

    print_report(
        "E12 — adversarial churn schedules",
        "Robustness beyond the paper's oblivious churn (RAES line of work)",
        preset,
        &[table],
        &[comparisons],
    );
}
