//! The scenario registry: every experiment of this workspace as a
//! declarative `churn_sim::scenario::Scenario`.
//!
//! This replaces the bespoke sweep loops of the 13 legacy `exp_*` / `fig_*`
//! binaries: each experiment is now a ~15-line spec registered here and
//! executed through the single `exp` runner (`exp run <name>|--all
//! [--smoke] [--resume]`). The legacy binary names survive as thin shims
//! ([`shim_main`]) that run their scenario(s) through the same engine, so
//! existing invocations (`cargo run --bin exp_raes_flooding -- quick`) keep
//! working.
//!
//! Grids: the **full** preset carries the configurations recorded in
//! `EXPERIMENTS.md` (including the `n = 10⁶` rows, registered as separate
//! `*-1m` scenarios so they can be run — and resumed — independently); the
//! **smoke** preset is a tiny-`n` grid the whole registry finishes in
//! seconds, run by CI on every PR.

use churn_core::{ModelKind, VictimPolicy};
use churn_event::{BandwidthModel, CrashRestart, LatencyModel, LossModel, PartitionWindow};
use churn_protocol::{AdversaryModel, AttackKind, ChurnDriver, SaturationPolicy};
use churn_sim::scenario::{
    load_cell_records, load_load_records, load_series_records, run_scenario, scenario_load_path,
    scenario_output_path, scenario_series_path, AsyncFloodingSpec, AsyncRaesSpec, ExpansionSpec,
    FaultSpec, FloodingSpec, Grid, GridPreset, Measurement, NetSpec, RaesNet, RetryPolicy,
    RoundBudget, RunOptions, Scenario, ScenarioOutcome, ScenarioRegistry,
};

/// Builds the full registry. Scenario names are stable — they are the
/// checkpoint file names under `results/`.
#[must_use]
pub fn registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    let baselines = [
        NetSpec::Baseline(ModelKind::Sdg),
        NetSpec::Baseline(ModelKind::Pdg),
        NetSpec::Baseline(ModelKind::Sdgr),
        NetSpec::Baseline(ModelKind::Pdgr),
    ];

    // E1 — isolated nodes without edge regeneration (Lemmas 3.5 / 4.10).
    registry.register(
        Scenario::new(
            "isolated-nodes",
            "E1 — isolated nodes without edge regeneration",
            Measurement::Isolation,
        )
        .reproduces("Table 1 (isolated-nodes cell); Lemmas 3.5 and 4.10")
        .nets(baselines)
        .full_grid(Grid::new([1_024, 4_096], [1, 2, 3, 4, 6], 10))
        .smoke_grid(Grid::new([96], [2], 2))
        .base_seed(0xE1),
    );
    registry.register(
        Scenario::new(
            "isolated-nodes-1m",
            "E1 — isolated nodes at n = 10^6 (no-regeneration models)",
            Measurement::Isolation,
        )
        .reproduces("Lemmas 3.5 / 4.10 at scale (churn-observe incremental census)")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_000_000], [2, 4], 1))
        .smoke_grid(Grid::new([128], [2], 1))
        .base_seed(0xE1),
    );

    // E2 — large-subset expansion without regeneration (Lemmas 3.6 / 4.11).
    registry.register(
        Scenario::new(
            "large-set-expansion",
            "E2 — large-subset expansion without edge regeneration",
            Measurement::Expansion(ExpansionSpec {
                initial_window_div: 16,
                samples: 1,
                interval_div: 16,
                large_sets: true,
                fast: false,
            }),
        )
        .reproduces("Table 1 (large-set expansion); Lemmas 3.6 and 4.11")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_024, 4_096], [20, 24, 32], 5))
        .smoke_grid(Grid::new([96], [8], 2))
        .base_seed(0xE2),
    );
    registry.register(
        Scenario::new(
            "large-set-expansion-1m",
            "E2 — large-subset expansion at n = 10^6",
            Measurement::Expansion(ExpansionSpec {
                initial_window_div: 16,
                samples: 1,
                interval_div: 16,
                large_sets: true,
                fast: true,
            }),
        )
        .reproduces("Lemmas 3.6 / 4.11 at scale (incremental boundary sweep)")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_000_000], [20], 1))
        .smoke_grid(Grid::new([128], [8], 1))
        .base_seed(0xE2),
    );

    // E3 — flooding failure without regeneration (Theorems 3.7 / 4.12).
    registry.register(
        Scenario::new(
            "flooding-failure",
            "E3 — flooding failure without edge regeneration",
            Measurement::ParallelFlooding(FloodingSpec {
                budget: RoundBudget::Log2Times(6),
                record_isolation: false,
            }),
        )
        .reproduces("Table 1 (flooding negative results); Theorems 3.7 and 4.12")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_024], [1, 2, 3, 4], 200))
        .smoke_grid(Grid::new([256], [1, 2], 3))
        .base_seed(0xE3),
    );
    registry.register(
        Scenario::new(
            "flooding-failure-1m",
            "E3 — no completion within O(log n) rounds at n = 10^6",
            Measurement::ParallelFlooding(FloodingSpec {
                budget: RoundBudget::Log2Times(6),
                record_isolation: false,
            }),
        )
        .reproduces("Theorems 3.7 / 4.12 at scale")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_000_000], [1, 4], 6))
        .smoke_grid(Grid::new([256], [1], 2))
        .base_seed(0xE3),
    );

    // E4 — partial flooding (Theorems 3.8 / 4.13).
    registry.register(
        Scenario::new(
            "partial-flooding",
            "E4 — partial flooding without edge regeneration",
            Measurement::PartialFlooding,
        )
        .reproduces("Table 1 (flooding positive results); Theorems 3.8 and 4.13")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Pdg),
        ])
        .full_grid(Grid::new([1_024, 4_096, 16_384], [8, 12, 16, 24], 12))
        .smoke_grid(Grid::new([256], [8], 2))
        .base_seed(0xE4),
    );

    // E5 — expansion with edge regeneration (Theorems 3.15 / 4.16).
    registry.register(
        Scenario::new(
            "regen-expansion",
            "E5 — snapshot expansion with edge regeneration",
            Measurement::Expansion(ExpansionSpec {
                initial_window_div: 0,
                samples: 3,
                interval_div: 8,
                large_sets: false,
                fast: false,
            }),
        )
        .reproduces("Table 1 (full-range expansion); Theorems 3.15 and 4.16")
        .nets([
            NetSpec::Baseline(ModelKind::Sdgr),
            NetSpec::Baseline(ModelKind::Pdgr),
        ])
        .full_grid(Grid::new([1_024, 4_096], [4, 8, 14, 21, 35], 5))
        .smoke_grid(Grid::new([96], [4], 1))
        .base_seed(0xE5),
    );

    // E5b — realized RAES graph tracked over time (protocol line of work).
    registry.register(
        Scenario::new(
            "raes-regen-tracking",
            "E5b — realized RAES graph tracked over time",
            Measurement::RaesTracking {
                samples: 8,
                interval_div: 4,
            },
        )
        .reproduces("RAES expansion-over-time (Becchetti et al.; Cruciani 2025)")
        .nets([
            NetSpec::raes_default(),
            NetSpec::Raes(RaesNet {
                saturation: SaturationPolicy::EvictOldest,
                ..RaesNet::default()
            }),
        ])
        .full_grid(Grid::new([4_096], [8], 1))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE5AE),
    );

    // E6 — flooding-time scaling with regeneration (Theorems 3.16 / 4.20).
    registry.register(
        Scenario::new(
            "flooding-scaling",
            "E6 — flooding completion time with edge regeneration",
            Measurement::ParallelFlooding(FloodingSpec {
                budget: RoundBudget::EngineDefault,
                record_isolation: false,
            }),
        )
        .reproduces("Table 1 (flooding with regeneration); Theorems 3.16 and 4.20")
        .nets([
            NetSpec::Baseline(ModelKind::Sdgr),
            NetSpec::Baseline(ModelKind::Pdgr),
        ])
        .full_grid(Grid::new(
            [
                256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 65_536, 262_144, 1_048_576,
            ],
            [8, 21],
            6,
        ))
        .smoke_grid(Grid::new([64, 128, 256], [4], 2))
        .base_seed(0xE6),
    );

    // E7 — static d-out random graph baseline (Lemma B.1).
    registry.register(
        Scenario::new(
            "static-baseline",
            "E7 — static d-out random graph baseline",
            Measurement::StaticBaseline,
        )
        .reproduces("Lemma B.1 (appendix): the no-churn reference point")
        .nets([NetSpec::Static])
        .full_grid(Grid::new([1_024, 4_096, 16_384], [3, 4, 8], 8))
        .smoke_grid(Grid::new([256], [3, 8], 2))
        .base_seed(0xE7),
    );

    // E8 — Poisson churn demographics (Lemmas 4.4–4.8).
    registry.register(
        Scenario::new(
            "poisson-churn",
            "E8 — Poisson churn demographics",
            Measurement::PoissonDemographics {
                units: 1_500,
                smoke_units: 120,
            },
        )
        .reproduces("Lemmas 4.4, 4.6, 4.7 and 4.8 (the Poisson churn substrate)")
        .nets([NetSpec::Baseline(ModelKind::Pdg)])
        .full_grid(Grid::new([1_024, 4_096, 16_384], [2], 1))
        .smoke_grid(Grid::new([256], [2], 1))
        .base_seed(0xE8),
    );

    // E9 — onion-skin growth (Claim 3.10 / Lemma 3.9).
    registry.register(
        Scenario::new(
            "onion-skin",
            "E9 — onion-skin growth on realized SDG graphs",
            Measurement::OnionSkin,
        )
        .reproduces("Claim 3.10 and Lemma 3.9 (the device behind Theorem 3.8)")
        .nets([NetSpec::Baseline(ModelKind::Sdg)])
        .full_grid(Grid::new([16_384], [64, 128], 3))
        .smoke_grid(Grid::new([1_024], [16], 1))
        .base_seed(0xE9),
    );
    registry.register(
        Scenario::new(
            "onion-skin-1m",
            "E9 — onion-skin growth at n = 10^6",
            Measurement::OnionSkin,
        )
        .reproduces("Claim 3.10 / Lemma 3.9 at scale (dense-index construction)")
        .nets([NetSpec::Baseline(ModelKind::Sdg)])
        .full_grid(Grid::new([1_000_000], [64, 128], 1))
        .smoke_grid(Grid::new([2_048], [16], 1))
        .base_seed(0xE9),
    );

    // E10 — Bitcoin-like overlay (Sections 1.1 and 2).
    registry.register(
        Scenario::new(
            "p2p-overlay",
            "E10 — Bitcoin-like overlay under churn",
            Measurement::P2pPropagation {
                blocks: 6,
                smoke_blocks: 2,
            },
        )
        .reproduces("Sections 1.1 and 2 (the PDGR model's motivating application)")
        .nets([NetSpec::P2p])
        .full_grid(Grid::new([1_000, 2_000], [8], 1))
        .smoke_grid(Grid::new([300], [8], 1))
        .base_seed(0xE10),
    );

    // E11 — flooding over all five dynamic networks (protocol comparison).
    registry.register(
        Scenario::new(
            "raes-flooding",
            "E11 — flooding over RAES-maintained vs. paper topologies",
            Measurement::ParallelFlooding(FloodingSpec {
                budget: RoundBudget::Log2Times(8),
                record_isolation: true,
            }),
        )
        .reproduces("churn-protocol RAES vs. Table 1 baselines (Cruciani 2025)")
        .nets([
            NetSpec::Baseline(ModelKind::Sdg),
            NetSpec::Baseline(ModelKind::Sdgr),
            NetSpec::Baseline(ModelKind::Pdg),
            NetSpec::Baseline(ModelKind::Pdgr),
            NetSpec::raes_default(),
        ])
        .full_grid(Grid::new([100_000, 1_000_000], [8], 6))
        .smoke_grid(Grid::new([256], [8], 2))
        .base_seed(0xE11),
    );

    // E13 (new) — the RAES protocol axes under saturation: capacity factor,
    // saturation policy and the attempts-per-round knob as grid axes.
    registry.register(
        Scenario::new(
            "raes-saturation",
            "E13 — RAES saturation policies and the attempts-per-round knob",
            Measurement::ParallelFlooding(FloodingSpec {
                budget: RoundBudget::Log2Times(8),
                record_isolation: true,
            }),
        )
        .reproduces("Protocol behaviour at c = 1 (capacity = demand): repair latency vs. attempts")
        .nets([
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                attempts: 2,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                attempts: 4,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                saturation: SaturationPolicy::EvictOldest,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                churn: ChurnDriver::Poisson,
                capacity: 1.0,
                attempts: 2,
                ..RaesNet::default()
            }),
        ])
        .full_grid(Grid::new([4_096, 16_384], [8], 4))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE13),
    );

    // E14 — Byzantine protocol-level adversaries (churn-protocol behavior
    // layer). Same measurement and base seed as E11, so the f = 0 column
    // (plain `NetSpec::raes_default()`) shares its cell seeds with E11's
    // RAES rows and reproduces those flooding numbers bit for bit — the
    // zero-adversary anchor every degradation figure is read against.
    let byz_flooding = || {
        Measurement::ParallelFlooding(FloodingSpec {
            budget: RoundBudget::Log2Times(8),
            record_isolation: true,
        })
    };
    let uniform = |fraction: f64, attack: AttackKind| {
        NetSpec::Raes(RaesNet {
            adversary: AdversaryModel::Uniform { fraction, attack },
            ..RaesNet::default()
        })
    };
    let mut byz_nets = vec![NetSpec::raes_default()];
    for attack in [
        AttackKind::RefuseAll,
        AttackKind::AcceptThenDrop,
        AttackKind::CapSaturator,
        AttackKind::SilentOnFlood,
    ] {
        for fraction in [0.01, 0.05, 0.1, 0.2] {
            byz_nets.push(uniform(fraction, attack));
        }
    }
    registry.register(
        Scenario::new(
            "byzantine-raes",
            "E14 — RAES flooding under uniformly corrupted populations",
            byz_flooding(),
        )
        .reproduces("Degradation of E11's RAES rows under f ∈ {0, .01, .05, .1, .2} × attack kind")
        .nets(byz_nets)
        .full_grid(Grid::new([100_000], [8], 2))
        .smoke_grid(Grid::new([256], [8], 1))
        .base_seed(0xE11),
    );
    registry.register(
        Scenario::new(
            "byzantine-raes-1m",
            "E14 — uniformly corrupted RAES flooding at n = 10^6",
            byz_flooding(),
        )
        .reproduces(
            "E14 at scale; the f = 0 row is bit-identical to raes-flooding's 10^6 RAES cell",
        )
        .nets([
            NetSpec::raes_default(),
            uniform(0.05, AttackKind::RefuseAll),
            uniform(0.2, AttackKind::RefuseAll),
            uniform(0.05, AttackKind::CapSaturator),
            uniform(0.2, AttackKind::CapSaturator),
            uniform(0.2, AttackKind::SilentOnFlood),
        ])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [8], 1))
        .base_seed(0xE11),
    );

    // E15 — structured adversaries: eclipse (targeted-neighborhood) and
    // join-flood cohorts, versus E14's uniform corruption.
    registry.register(
        Scenario::new(
            "byzantine-eclipse",
            "E15 — eclipse and join-flood adversaries on RAES",
            byz_flooding(),
        )
        .reproduces("Targeted-victim vs. cohort-arrival corruption (f = 0 row anchors to E11)")
        .nets([
            NetSpec::raes_default(),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.01,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.05,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.1,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.2,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.05,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.2,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.05,
                    cohort: 8,
                    attack: AttackKind::SilentOnFlood,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.2,
                    cohort: 8,
                    attack: AttackKind::SilentOnFlood,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.2,
                    cohort: 16,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
        ])
        .full_grid(Grid::new([100_000], [8], 2))
        .smoke_grid(Grid::new([256], [8], 1))
        .base_seed(0xE11),
    );
    registry.register(
        Scenario::new(
            "byzantine-eclipse-1m",
            "E15 — eclipse and join-flood adversaries at n = 10^6",
            byz_flooding(),
        )
        .reproduces("E15 at scale (f = 0 row anchors to raes-flooding's 10^6 RAES cell)")
        .nets([
            NetSpec::raes_default(),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.1,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.1,
                    cohort: 8,
                    attack: AttackKind::SilentOnFlood,
                },
                ..RaesNet::default()
            }),
        ])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [8], 1))
        .base_seed(0xE11),
    );

    // E12 — adversarial churn schedules (robustness beyond oblivious churn).
    registry.register(
        Scenario::new(
            "adversarial-churn",
            "E12 — adversarial death schedules",
            Measurement::Flooding(FloodingSpec {
                budget: RoundBudget::Fixed(200),
                record_isolation: true,
            }),
        )
        .reproduces("Adaptive vs. oblivious churn (RAES line of work); Theorem 4.20")
        .nets([
            NetSpec::Baseline(ModelKind::Pdg),
            NetSpec::Baseline(ModelKind::Pdgr),
        ])
        .victims([
            VictimPolicy::Uniform,
            VictimPolicy::OldestFirst,
            VictimPolicy::HighestDegree,
        ])
        .full_grid(Grid::new([512, 1_024], [4, 8], 6))
        .smoke_grid(Grid::new([128], [2], 1))
        .base_seed(0xE12),
    );
    registry.register(
        Scenario::new(
            "adversarial-churn-1m",
            "E12 — degree-targeted churn at n = 10^6 (bucketed victim index)",
            Measurement::Flooding(FloodingSpec {
                budget: RoundBudget::Fixed(200),
                record_isolation: true,
            }),
        )
        .reproduces("Adversarial grids at scale, enabled by the degree-bucketed victim index")
        .nets([NetSpec::Baseline(ModelKind::Pdgr)])
        .victims([VictimPolicy::Uniform, VictimPolicy::HighestDegree])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [4], 1))
        .base_seed(0xE12),
    );

    // E16 — event-driven asynchronous flooding (churn-event): per-message
    // latency, per-node bandwidth, rounds emerge from the timing. The
    // relaxation of E6's synchronous-round assumption.
    registry.register(
        Scenario::new(
            "async-flooding",
            "E16 — asynchronous flooding with latency and bandwidth",
            Measurement::AsyncFlooding(AsyncFloodingSpec {
                latency: LatencyModel::Exponential { mean: 0.5 },
                bandwidth: BandwidthModel::drop_tail(32.0, 64),
                horizon: RoundBudget::Log2Times(6),
            }),
        )
        .reproduces(
            "Event-driven relaxation of E6: emergent rounds and completion time vs. \
             the synchronous flooding time",
        )
        .nets([
            NetSpec::Baseline(ModelKind::Sdgr),
            NetSpec::Baseline(ModelKind::Pdgr),
            NetSpec::raes_default(),
        ])
        .full_grid(Grid::new([1_024, 4_096, 16_384], [8], 5))
        .smoke_grid(Grid::new([128, 256], [4], 1))
        .base_seed(0xE16),
    );
    registry.register(
        Scenario::new(
            "async-flooding-1m",
            "E16 — asynchronous flooding at n = 10^6",
            Measurement::AsyncFlooding(AsyncFloodingSpec {
                latency: LatencyModel::Exponential { mean: 0.5 },
                bandwidth: BandwidthModel::drop_tail(32.0, 64),
                horizon: RoundBudget::Log2Times(6),
            }),
        )
        .reproduces("E16 at scale (one heap event per message delivery)")
        .nets([NetSpec::Baseline(ModelKind::Sdgr), NetSpec::raes_default()])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [4], 1))
        .base_seed(0xE16),
    );

    // E17 — asynchronous RAES repair under message load: requests and
    // accepts queue behind flood traffic on the same egress links.
    registry.register(
        Scenario::new(
            "async-raes-load",
            "E17 — RAES repair under message load",
            Measurement::AsyncRaes(AsyncRaesSpec {
                latency: LatencyModel::Exponential { mean: 0.5 },
                bandwidth: BandwidthModel::delaying(32.0),
                horizon: RoundBudget::Log2Times(6),
                flood: true,
            }),
        )
        .reproduces(
            "Message-level RAES: repair-time percentiles with repair traffic \
             queueing behind a concurrent flood",
        )
        .nets([
            NetSpec::raes_default(),
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                ..RaesNet::default()
            }),
        ])
        .full_grid(Grid::new([1_024, 4_096, 16_384], [8], 5))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE17),
    );
    registry.register(
        Scenario::new(
            "async-raes-load-1m",
            "E17 — message-level RAES repair at n = 10^6",
            Measurement::AsyncRaes(AsyncRaesSpec {
                latency: LatencyModel::Exponential { mean: 0.5 },
                bandwidth: BandwidthModel::delaying(32.0),
                horizon: RoundBudget::Log2Times(6),
                flood: true,
            }),
        )
        .reproduces("E17 at scale (initial wiring alone is ~8M request/reply messages)")
        .nets([NetSpec::raes_default()])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE17),
    );

    // E18 — the chaos layer over E16's asynchronous flooding: i.i.d. link
    // loss swept from 0 to 30%. Same base seed and measurement spec as
    // async-flooding, so the loss-0 column shares its cell seeds with E16's
    // SDGR rows and reproduces those records bit for bit (the fault-axis
    // counterpart of the Byzantine f = 0 anchor).
    let e16_spec = || AsyncFloodingSpec {
        latency: LatencyModel::Exponential { mean: 0.5 },
        bandwidth: BandwidthModel::drop_tail(32.0, 64),
        horizon: RoundBudget::Log2Times(6),
    };
    let loss_axis = [
        FaultSpec::none(),
        FaultSpec::iid_loss(0.01),
        FaultSpec::iid_loss(0.05),
        FaultSpec::iid_loss(0.1),
        FaultSpec::iid_loss(0.3),
    ];
    registry.register(
        Scenario::new(
            "lossy-flooding",
            "E18 — asynchronous flooding under i.i.d. link loss",
            Measurement::AsyncFlooding(e16_spec()),
        )
        .reproduces(
            "Flood-completion degradation vs. link-loss rate; the loss-0 \
             column reproduces E16's SDGR rows bit for bit",
        )
        .nets([NetSpec::Baseline(ModelKind::Sdgr)])
        .faults(loss_axis)
        .full_grid(Grid::new([1_024, 4_096], [8], 3))
        .smoke_grid(Grid::new([128, 256], [4], 1))
        .base_seed(0xE16),
    );
    registry.register(
        Scenario::new(
            "lossy-flooding-1m",
            "E18 — lossy asynchronous flooding at n = 10^6",
            Measurement::AsyncFlooding(e16_spec()),
        )
        .reproduces("E18 at scale (per-link loss draws ride the fault substream)")
        .nets([NetSpec::Baseline(ModelKind::Sdgr)])
        .faults([FaultSpec::none(), FaultSpec::iid_loss(0.1)])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [4], 1))
        .base_seed(0xE16),
    );

    // E19 — scheduled partition with pull anti-entropy healing: the flood
    // stalls at the source block's fraction during the window, then the
    // periodic pulls complete it after the heal. The per-block heal census
    // and end-of-run recovery census feed the time-to-reheal and
    // *_block_informed columns.
    // Onset at t = 0: the flood spreads in a handful of time units, so a
    // later onset would partition an already-informed population. Starting
    // partitioned makes the informed curve stall at the source block until
    // the heal, which is the recovery story the scenario measures.
    let partition = |blocks: u32| FaultSpec {
        partition: Some(PartitionWindow {
            start: 0.0,
            heal: 20.0,
            blocks,
        }),
        anti_entropy: Some(1.0),
        ..FaultSpec::none()
    };
    registry.register(
        Scenario::new(
            "partition-healing",
            "E19 — scheduled partition, pull anti-entropy healing",
            Measurement::AsyncFlooding(e16_spec()),
        )
        .reproduces(
            "Partition-healing recovery: informed fraction stalls at the \
             majority block during the window, anti-entropy completes the \
             flood post-heal; time-to-reheal and redundancy columns",
        )
        .nets([NetSpec::Baseline(ModelKind::Sdgr)])
        .faults([FaultSpec::none(), partition(2), partition(3)])
        .full_grid(Grid::new([1_024, 4_096], [8], 3))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE16),
    );
    registry.register(
        Scenario::new(
            "partition-healing-1m",
            "E19 — partition healing at n = 10^6",
            Measurement::AsyncFlooding(e16_spec()),
        )
        .reproduces("E19 at scale (block membership is a pure id hash)")
        .nets([NetSpec::Baseline(ModelKind::Sdgr)])
        .faults([partition(2)])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([256], [4], 1))
        .base_seed(0xE16),
    );

    // E20 — RAES repair under 30% link loss plus crash–restart, with
    // bounded exponential-backoff retries: the run must terminate with every
    // repair either acknowledged or shed (retries_exhausted), never wedged.
    // Same base seed and spec as async-raes-load, so the fault-free column
    // reproduces E17's default-net rows bit for bit.
    let e17_spec = || AsyncRaesSpec {
        latency: LatencyModel::Exponential { mean: 0.5 },
        bandwidth: BandwidthModel::delaying(32.0),
        horizon: RoundBudget::Log2Times(6),
        flood: true,
    };
    let chaos_retry = RetryPolicy {
        factor: 2.0,
        jitter: 0.25,
        budget: 6,
    };
    let crashes = CrashRestart {
        rate: 0.002,
        downtime: LatencyModel::Fixed(4.0),
    };
    registry.register(
        Scenario::new(
            "crash-restart-raes",
            "E20 — RAES repair under loss and crash–restart",
            Measurement::AsyncRaes(e17_spec()),
        )
        .reproduces(
            "Graceful degradation of message-level RAES: crash–restart \
             re-repair and 30% link loss with bounded-backoff retries \
             (shed, counted, never wedged)",
        )
        .nets([NetSpec::raes_default()])
        .faults([
            FaultSpec::none(),
            FaultSpec {
                crash: Some(crashes),
                retry: Some(chaos_retry),
                ..FaultSpec::none()
            },
            FaultSpec {
                loss: LossModel::Iid { p: 0.3 },
                crash: Some(crashes),
                retry: Some(chaos_retry),
                ..FaultSpec::none()
            },
        ])
        .full_grid(Grid::new([1_024, 4_096], [8], 3))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE17),
    );
    registry.register(
        Scenario::new(
            "crash-restart-raes-1m",
            "E20 — lossy crash–restart RAES at n = 10^6",
            Measurement::AsyncRaes(e17_spec()),
        )
        .reproduces("E20 at scale (retry budget bounds the retransmission volume)")
        .nets([NetSpec::raes_default()])
        .faults([FaultSpec {
            loss: LossModel::Iid { p: 0.3 },
            crash: Some(crashes),
            retry: Some(chaos_retry),
            ..FaultSpec::none()
        }])
        .full_grid(Grid::new([1_000_000], [8], 1))
        .smoke_grid(Grid::new([128], [4], 1))
        .base_seed(0xE17),
    );

    registry
}

/// Runs one scenario with the given options and prints its report (header,
/// cell/skip counts, per-point summary table).
///
/// # Panics
///
/// Panics when the scenario is unknown or the checkpoint file cannot be
/// written — both are fatal for a CLI run.
pub fn run_and_report(
    registry: &ScenarioRegistry,
    name: &str,
    opts: &RunOptions,
) -> ScenarioOutcome {
    let scenario = registry
        .get(name)
        .unwrap_or_else(|| panic!("unknown scenario {name:?} (try `exp list`)"));
    println!("## {}", scenario.title());
    println!();
    if !scenario.reproduced_artifact().is_empty() {
        println!(
            "Reproduces: {}  (preset: {})",
            scenario.reproduced_artifact(),
            opts.preset.label()
        );
        println!();
    }
    let outcome =
        run_scenario(scenario, opts).unwrap_or_else(|e| panic!("scenario {name:?} failed: {e}"));
    println!(
        "Cells: {} total, {} executed, {} resumed from checkpoint → {}",
        outcome.total,
        outcome.executed,
        outcome.skipped,
        outcome.path.display()
    );
    if !outcome.failures.is_empty() {
        println!(
            "FAILED cells: {} (recorded in the .failures.jsonl side file; \
             `--resume` retries exactly these)",
            outcome.failures.len()
        );
        for failure in &outcome.failures {
            println!(
                "  {} n={} d={} trial={} seed={}: {}",
                failure.net, failure.n, failure.d, failure.trial, failure.seed, failure.error
            );
        }
    }
    println!();
    let table = churn_analysis::summarize_cells(
        format!("{} — per-point means", scenario.name()),
        &outcome.records,
    );
    println!("{}", table.to_markdown());
    outcome
}

/// Regenerates the report for `name` from the stored checkpoint (and, when
/// present, the `.series.jsonl` and `.load.jsonl` side files) without
/// running any cell. The verdict tables are rebuilt by
/// `churn_analysis::scenario_report` from the on-disk records alone, so
/// `exp report` works on a machine that only has the `results/` directory.
/// The load file adds a wall-clock throughput table covering the cells the
/// last invocation actually executed — machine-dependent by design, so it
/// never feeds a verdict.
///
/// # Errors
///
/// Returns a human-readable message when the scenario is unknown, the
/// checkpoint is missing/unreadable, or it holds no cells yet.
pub fn report_from_disk(
    registry: &ScenarioRegistry,
    name: &str,
    opts: &RunOptions,
) -> Result<churn_analysis::ScenarioReport, String> {
    let scenario = registry
        .get(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (try `exp list`)"))?;
    let path = scenario_output_path(scenario, opts);
    let records = load_cell_records(&path)
        .map_err(|e| format!("{}: {e} (run the scenario first)", path.display()))?;
    if records.is_empty() {
        return Err(format!(
            "{}: no stored cells yet (run the scenario first)",
            path.display()
        ));
    }
    let series_path = scenario_series_path(scenario, opts);
    let series = if series_path.exists() {
        load_series_records(&series_path).map_err(|e| format!("{}: {e}", series_path.display()))?
    } else {
        Vec::new()
    };
    let load_path = scenario_load_path(scenario, opts);
    let loads = if load_path.exists() {
        load_load_records(&load_path).map_err(|e| format!("{}: {e}", load_path.display()))?
    } else {
        Vec::new()
    };
    Ok(churn_analysis::scenario_report(
        name, &records, &series, &loads,
    ))
}

/// Entry point of the legacy experiment shims: maps the historical `quick`
/// CLI argument / `CHURN_QUICK` environment variable to the smoke preset and
/// runs the listed scenarios through the engine.
pub fn shim_main(scenario_names: &[&str]) {
    let preset = match crate::preset_from_env_and_args() {
        crate::Preset::Quick => GridPreset::Smoke,
        crate::Preset::Full => GridPreset::Full,
    };
    let resume = std::env::args().skip(1).any(|a| a == "--resume");
    let registry = registry();
    let mut failed_cells = 0usize;
    for name in scenario_names {
        let opts = RunOptions {
            preset,
            resume,
            ..RunOptions::default()
        };
        failed_cells += run_and_report(&registry, name, &opts).failures.len();
    }
    if failed_cells > 0 {
        eprintln!("{failed_cells} cell(s) failed; rerun with --resume to retry them");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_names_and_validates_every_scenario() {
        let registry = registry();
        let names = registry.names();
        assert!(names.len() >= 20, "all legacy experiments are registered");
        for scenario in registry.scenarios() {
            // register() already validated; re-validate for the round trip
            // and pin the lookup.
            assert!(scenario.validate().is_ok(), "{}", scenario.name());
            assert_eq!(
                registry.get(scenario.name()).map(Scenario::name),
                Some(scenario.name())
            );
            // Every scenario has a non-empty smoke grid that is genuinely
            // small (CI runs the whole registry per PR).
            let smoke = scenario.cells(GridPreset::Smoke);
            assert!(!smoke.is_empty(), "{} has no smoke cells", scenario.name());
            assert!(
                smoke.iter().all(|c| c.n <= 2_048),
                "{} smoke grid must stay tiny",
                scenario.name()
            );
            // byzantine-raes carries the widest net axis (the f = 0 anchor
            // plus 4 fractions × 4 attack kinds = 17 nets).
            assert!(
                smoke.len() <= 24,
                "{} smoke grid must stay narrow",
                scenario.name()
            );
            let full = scenario.cells(GridPreset::Full);
            assert!(!full.is_empty(), "{} has no full cells", scenario.name());
            // Cell seeds are unique within a preset (they are the checkpoint
            // identity).
            for cells in [&smoke, &full] {
                let mut seeds: Vec<u64> = cells.iter().map(|c| scenario.cell_seed(c)).collect();
                seeds.sort_unstable();
                seeds.dedup();
                assert_eq!(seeds.len(), cells.len(), "{}", scenario.name());
            }
        }
        // The historical experiment set is covered.
        for name in [
            "isolated-nodes",
            "large-set-expansion",
            "flooding-failure",
            "partial-flooding",
            "regen-expansion",
            "raes-regen-tracking",
            "flooding-scaling",
            "static-baseline",
            "poisson-churn",
            "onion-skin",
            "p2p-overlay",
            "raes-flooding",
            "adversarial-churn",
            "byzantine-raes",
            "byzantine-raes-1m",
            "byzantine-eclipse",
            "byzantine-eclipse-1m",
            "async-flooding",
            "async-flooding-1m",
            "async-raes-load",
            "async-raes-load-1m",
            "lossy-flooding",
            "lossy-flooding-1m",
            "partition-healing",
            "partition-healing-1m",
            "crash-restart-raes",
            "crash-restart-raes-1m",
        ] {
            assert!(registry.get(name).is_some(), "missing scenario {name}");
        }
    }

    #[test]
    fn async_scenarios_carry_event_level_measurements() {
        let registry = registry();
        for (name, kind) in [
            ("async-flooding", "async-flooding"),
            ("async-flooding-1m", "async-flooding"),
            ("async-raes-load", "async-raes"),
            ("async-raes-load-1m", "async-raes"),
            ("lossy-flooding", "async-flooding"),
            ("lossy-flooding-1m", "async-flooding"),
            ("partition-healing", "async-flooding"),
            ("partition-healing-1m", "async-flooding"),
            ("crash-restart-raes", "async-raes"),
            ("crash-restart-raes-1m", "async-raes"),
        ] {
            let scenario = registry.get(name).unwrap();
            assert_eq!(scenario.measurement().kind(), kind, "{name}");
            // The nonzero-latency, finite-bandwidth regime is the point of
            // these scenarios — a zero-latency registration would collapse
            // them back into the synchronous engines.
            match scenario.measurement() {
                Measurement::AsyncFlooding(spec) => {
                    assert!(matches!(
                        spec.latency,
                        LatencyModel::Exponential { mean } if mean > 0.0
                    ));
                }
                Measurement::AsyncRaes(spec) => {
                    assert!(matches!(
                        spec.latency,
                        LatencyModel::Exponential { mean } if mean > 0.0
                    ));
                    assert!(spec.flood, "{name} must flood while repairing");
                }
                other => panic!("{name} has unexpected measurement {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_fault_free_columns_share_their_cell_seeds_with_e16_e17() {
        // The fault-axis anchor: every chaos scenario's fault-free cells
        // must carry exactly the cell seeds of its E16 / E17 sibling (same
        // base seed, same net tag, same measurement spec), so their records
        // reproduce today's async numbers bit for bit — the event suite
        // separately pins that an empty `FaultPlan` is RNG-stream-identical
        // to no fault layer at all.
        let registry = registry();
        for (chaos_name, anchor_name) in [
            ("lossy-flooding", "async-flooding"),
            ("lossy-flooding-1m", "async-flooding-1m"),
            ("partition-healing", "async-flooding"),
            ("crash-restart-raes", "async-raes-load"),
        ] {
            let anchor = registry.get(anchor_name).unwrap();
            let chaos = registry.get(chaos_name).unwrap();
            assert_eq!(
                format!("{:?}", chaos.measurement()),
                format!("{:?}", anchor.measurement()),
                "{chaos_name} must measure exactly what {anchor_name} measures"
            );
            let anchor_seeds: std::collections::HashSet<u64> = anchor
                .cells(GridPreset::Full)
                .iter()
                .map(|c| anchor.cell_seed(c))
                .collect();
            let fault_free: Vec<_> = chaos
                .cells(GridPreset::Full)
                .into_iter()
                .filter(|c| c.fault.is_none())
                .collect();
            assert!(
                !fault_free.is_empty(),
                "{chaos_name} is missing its fault-free anchor column"
            );
            for cell in fault_free {
                assert!(
                    anchor_seeds.contains(&chaos.cell_seed(&cell)),
                    "{chaos_name} fault-free cell (net {}, n = {}, trial {}) \
                     must share an {anchor_name} seed",
                    cell.net.label(),
                    cell.n,
                    cell.trial
                );
            }
        }
    }

    #[test]
    fn byzantine_f0_columns_share_their_cell_seeds_with_raes_flooding() {
        // The zero-adversary anchor: every byzantine scenario's plain-RAES
        // cells must carry exactly the cell seeds of E11's RAES rows (same
        // base seed, same net seed tag, same measurement spec), so their
        // records reproduce today's flooding numbers bit for bit — the
        // protocol suite separately pins that a zero-fraction adversary is
        // RNG-stream-identical to no adversary at all.
        let registry = registry();
        let e11 = registry.get("raes-flooding").unwrap();
        let e11_seeds: std::collections::HashSet<u64> = e11
            .cells(GridPreset::Full)
            .iter()
            .filter(|c| c.net.label() == "RAES")
            .map(|c| e11.cell_seed(c))
            .collect();
        for name in [
            "byzantine-raes",
            "byzantine-raes-1m",
            "byzantine-eclipse",
            "byzantine-eclipse-1m",
        ] {
            let byz = registry.get(name).unwrap();
            assert_eq!(
                format!("{:?}", byz.measurement()),
                format!("{:?}", e11.measurement()),
                "{name} must measure exactly what E11 measures"
            );
            let f0: Vec<_> = byz
                .cells(GridPreset::Full)
                .into_iter()
                .filter(|c| c.net.label() == "RAES")
                .collect();
            assert!(!f0.is_empty(), "{name} is missing its f = 0 anchor column");
            for cell in f0 {
                assert!(
                    e11_seeds.contains(&byz.cell_seed(&cell)),
                    "{name} f = 0 cell (n = {}, trial {}) must share an E11 seed",
                    cell.n,
                    cell.trial
                );
            }
        }
    }
}
