//! # churn-bench
//!
//! Experiment binaries and Criterion benches for the churn-network
//! reproduction.
//!
//! * Every experiment of `DESIGN.md` §5 (E1–E10) has a binary in `src/bin/`
//!   that regenerates the corresponding table or figure series:
//!   `cargo run --release -p churn-bench --bin exp_isolated_nodes`, etc.
//!   Each binary accepts an optional `quick` argument (or the `CHURN_QUICK=1`
//!   environment variable) that shrinks the grid for a fast smoke run; the
//!   default is the full laptop-scale configuration recorded in
//!   `EXPERIMENTS.md`.
//! * The Criterion benches in `benches/` measure the library's own throughput
//!   (model stepping, snapshotting, flooding, expansion estimation, jump-chain
//!   sampling) plus the design ablations called out in `DESIGN.md` §6.
//!   Passing `--json <path>` after `--` (or setting `CHURN_BENCH_JSON`) makes
//!   every bench append one machine-readable JSON line to `<path>`; the
//!   `bench_report` binary joins a baseline and an optimized run into a
//!   comparison file (this is how `BENCH_PR1.json` is produced). Set
//!   `CHURN_BENCH_FAST=1` for a one-sample smoke run (used by CI).
//!
//! This crate's library part only holds the small amount of shared plumbing the
//! binaries use (preset selection and report printing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

use churn_analysis::ComparisonSet;
use churn_sim::Table;

/// Which grid a binary should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// The full configuration recorded in `EXPERIMENTS.md` (minutes per binary).
    Full,
    /// A reduced grid for smoke runs (seconds to a minute per binary).
    Quick,
}

impl Preset {
    /// Returns `true` for [`Preset::Quick`].
    #[must_use]
    pub fn is_quick(self) -> bool {
        matches!(self, Preset::Quick)
    }

    /// Picks between the quick and full value.
    #[must_use]
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Preset::Quick => quick,
            Preset::Full => full,
        }
    }

    /// Display label used in report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Preset::Full => "full",
            Preset::Quick => "quick",
        }
    }
}

/// Determines the preset from the command line (`quick` / `full` argument) and
/// the `CHURN_QUICK` environment variable. The default is [`Preset::Full`].
#[must_use]
pub fn preset_from_env_and_args() -> Preset {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a.eq_ignore_ascii_case("quick")) {
        return Preset::Quick;
    }
    if args.iter().any(|a| a.eq_ignore_ascii_case("full")) {
        return Preset::Full;
    }
    match std::env::var("CHURN_QUICK") {
        Ok(value) if value == "1" || value.eq_ignore_ascii_case("true") => Preset::Quick,
        _ => Preset::Full,
    }
}

/// Prints an experiment report: a header, the result tables (as Markdown, so
/// the output can be pasted into `EXPERIMENTS.md` verbatim) and the
/// paper-vs-measured comparison sets with an overall verdict.
pub fn print_report(
    experiment: &str,
    paper_artifact: &str,
    preset: Preset,
    tables: &[Table],
    comparisons: &[ComparisonSet],
) {
    println!("## {experiment}");
    println!();
    println!("Reproduces: {paper_artifact}  (preset: {})", preset.label());
    println!();
    for table in tables {
        println!("{}", table.to_markdown());
    }
    for set in comparisons {
        println!("{}", set.to_markdown());
        let verdict = if set.all_hold() {
            "all comparisons hold"
        } else {
            "SOME COMPARISONS FAIL"
        };
        println!("Verdict: {verdict} ({}/{}).", set.holding(), set.len());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_pick_selects_the_matching_value() {
        assert_eq!(Preset::Quick.pick(1, 2), 1);
        assert_eq!(Preset::Full.pick(1, 2), 2);
        assert!(Preset::Quick.is_quick());
        assert!(!Preset::Full.is_quick());
        assert_eq!(Preset::Quick.label(), "quick");
        assert_eq!(Preset::Full.label(), "full");
    }

    #[test]
    fn print_report_does_not_panic() {
        let mut table = Table::new("t", ["a"]);
        table.push_row(["1"]);
        let mut set = ComparisonSet::new("c");
        set.push(churn_analysis::Comparison::new(
            "x", "Lemma", "1", "1", true,
        ));
        print_report("E0", "demo", Preset::Quick, &[table], &[set]);
    }
}
