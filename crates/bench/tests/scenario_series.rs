//! Determinism and non-interference suite for the telemetry layer.
//!
//! The per-round series side file is an *observation*, never an input: these
//! tests pin that
//!
//! * `.series.jsonl` replays byte-identically across reruns and across an
//!   interrupted + resumed run (the side file is checkpoint-shaped, keyed by
//!   the same deterministic cell seeds as the main file),
//! * running with series recording **and** the phase-profiler subscriber
//!   attached leaves the main records byte-identical to the recorded E16/E17
//!   golden fixtures — trace recording consumes no randomness and the
//!   subscriber only observes,
//! * no wall-clock key ever leaks into the series file (wall-clock data is
//!   quarantined in the non-checkpointed `.load.jsonl`),
//! * a run without `--series` removes a stale series file, so the side file
//!   on disk always describes the checkpoint next to it,
//! * `exp report` input (`report_from_disk`) rebuilds the verdict tables
//!   from the stored files alone, without rewriting the checkpoint.

use std::fs;
use std::path::PathBuf;

use churn_bench::scenarios::{self, registry};
use churn_sim::scenario::{
    load_series_records, run_scenario, scenario_series_path, GridPreset, RunOptions, Scenario,
};

fn smoke_opts(dir: PathBuf) -> RunOptions {
    RunOptions {
        preset: GridPreset::Smoke,
        dir,
        series: true,
        ..RunOptions::default()
    }
}

fn run_series_smoke(scenario: &Scenario, opts: &RunOptions) -> (Vec<u8>, Vec<u8>) {
    let outcome = run_scenario(scenario, opts).expect("scenario runs");
    assert!(outcome.failures.is_empty());
    let main = fs::read(&outcome.path).expect("main checkpoint written");
    let series_path = scenario_series_path(scenario, opts);
    let series = fs::read(&series_path).expect("series side file written");
    (main, series)
}

#[test]
fn series_files_replay_byte_identically_across_reruns() {
    let registry = registry();
    let scenario = registry.get("flooding-scaling").unwrap();
    let base = std::env::temp_dir().join(format!("churn-series-rerun-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let first = run_series_smoke(scenario, &smoke_opts(base.join("first")));
    let second = run_series_smoke(scenario, &smoke_opts(base.join("second")));
    assert_eq!(first.0, second.0, "main records replay byte-identically");
    assert_eq!(first.1, second.1, "series records replay byte-identically");

    // Wall-clock data never leaks into either checkpoint-shaped file.
    let series_text = String::from_utf8(first.1).unwrap();
    assert!(!series_text.is_empty());
    for key in ["wall_s", "units_per_s", "phases"] {
        assert!(
            !series_text.contains(key),
            "{key} leaked into the series side file"
        );
    }
    // One series line per cell, each parseable and non-empty.
    let opts = smoke_opts(base.join("first"));
    let records = load_series_records(&scenario_series_path(scenario, &opts)).unwrap();
    assert_eq!(records.len(), scenario.cells(GridPreset::Smoke).len());
    assert!(records.iter().all(|r| r.rounds() > 0));
    assert!(records
        .iter()
        .all(|r| r.column("informed_fraction").is_some()));
    fs::remove_dir_all(&base).ok();
}

#[test]
fn interrupted_series_run_resumes_bit_identically() {
    let registry = registry();
    let scenario = registry.get("raes-flooding").unwrap();
    let base = std::env::temp_dir().join(format!("churn-series-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let reference = run_series_smoke(scenario, &smoke_opts(base.join("reference")));

    // Kill after 4 cells, then resume with series still on: carried-over
    // cells must re-emit their recorded series lines verbatim.
    let interrupted = RunOptions {
        limit: Some(4),
        ..smoke_opts(base.join("resumed"))
    };
    let partial = run_scenario(scenario, &interrupted).unwrap();
    assert_eq!(partial.executed, 4);
    let resumed_opts = RunOptions {
        resume: true,
        limit: None,
        ..interrupted
    };
    let resumed = run_scenario(scenario, &resumed_opts).unwrap();
    assert_eq!(resumed.skipped, 4);
    assert_eq!(
        fs::read(&resumed.path).unwrap(),
        reference.0,
        "resumed main records must match an uninterrupted run bit for bit"
    );
    assert_eq!(
        fs::read(scenario_series_path(scenario, &resumed_opts)).unwrap(),
        reference.1,
        "resumed series records must match an uninterrupted run bit for bit"
    );
    fs::remove_dir_all(&base).ok();
}

#[test]
fn series_and_profiler_leave_the_async_golden_fixtures_byte_identical() {
    // The acceptance gate for "telemetry is an observer": the E16/E17 smoke
    // fixtures were recorded before the telemetry layer existed; replaying
    // them with series recording on (event traces captured, phase-profiler
    // subscriber attached around every cell) must yield the same main-file
    // bytes.
    let registry = registry();
    for (name, fixture) in [
        ("async-flooding", "async-flooding.smoke.jsonl"),
        ("async-raes-load", "async-raes-load.smoke.jsonl"),
    ] {
        let scenario = registry.get(name).unwrap();
        let base = std::env::temp_dir().join(format!("churn-series-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let opts = smoke_opts(base.clone());
        let (main, series) = run_series_smoke(scenario, &opts);
        let fixture_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(fixture);
        assert_eq!(
            main,
            fs::read(&fixture_path).unwrap(),
            "{name} main records must stay byte-identical with telemetry attached"
        );
        assert!(!series.is_empty(), "{name} recorded a series side file");
        fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn series_off_run_removes_a_stale_series_file() {
    let registry = registry();
    let scenario = registry.get("flooding-scaling").unwrap();
    let base = std::env::temp_dir().join(format!("churn-series-stale-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let with_series = smoke_opts(base.clone());
    run_series_smoke(scenario, &with_series);
    let series_path = scenario_series_path(scenario, &with_series);
    assert!(series_path.exists());

    // A series-off rerun (the default) must not leave the stale side file
    // next to a checkpoint it no longer describes.
    let without = RunOptions {
        series: false,
        ..with_series
    };
    run_scenario(scenario, &without).unwrap();
    assert!(
        !series_path.exists(),
        "stale series file must be removed by a series-off run"
    );
    fs::remove_dir_all(&base).ok();
}

#[test]
fn report_from_disk_rebuilds_verdicts_without_rewriting_the_checkpoint() {
    let registry = registry();
    let scenario = registry.get("flooding-scaling").unwrap();
    let base = std::env::temp_dir().join(format!("churn-series-report-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let opts = smoke_opts(base.clone());
    let (main_before, series_before) = run_series_smoke(scenario, &opts);

    let report = scenarios::report_from_disk(&registry, "flooding-scaling", &opts)
        .expect("report regenerates from the stored files");
    assert_eq!(
        report.tables.len(),
        3,
        "per-point means, the trajectory table from the series file, and \
         the throughput table from the load file"
    );
    assert!(
        report.tables[1].to_markdown().contains("rounds_to_half"),
        "trajectory table carries series-derived metrics"
    );
    assert!(
        report.tables[2].title().contains("machine-dependent"),
        "throughput table is flagged as machine-dependent"
    );
    assert!(
        report.tables[2].to_markdown().contains("units/s"),
        "throughput table carries the rate column"
    );
    assert!(!report.comparisons.is_empty(), "verdict rows derived");
    assert!(report.all_hold(), "flooding completes at smoke sizes");

    // Regeneration is read-only: neither stored file changed.
    let outcome_path = base.join("flooding-scaling.smoke.jsonl");
    assert_eq!(fs::read(&outcome_path).unwrap(), main_before);
    assert_eq!(
        fs::read(scenario_series_path(scenario, &opts)).unwrap(),
        series_before
    );

    // Missing checkpoint → a human-readable error, not a panic.
    let missing = RunOptions {
        dir: base.join("nowhere"),
        ..smoke_opts(base.clone())
    };
    let err = scenarios::report_from_disk(&registry, "flooding-scaling", &missing).unwrap_err();
    assert!(err.contains("run the scenario first"), "{err}");
    fs::remove_dir_all(&base).ok();
}
