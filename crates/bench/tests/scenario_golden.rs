//! Golden-equivalence suite: ported scenarios reproduce the pre-refactor
//! binaries' measurements exactly.
//!
//! Each test replays a legacy binary's measurement loop — the literal
//! pre-refactor control flow: `Sweep::trial_seed` seeding,
//! `build_with_victim`, the same warm-up / census / flooding calls — at the
//! scenario's small-`n` smoke grid, and compares against the records the
//! scenario engine wrote:
//!
//! * `adversarial-churn` (E12) and `isolated-nodes` (E1): the engine's
//!   output file is **byte-identical** to records serialised from the legacy
//!   loop's values.
//! * `raes-flooding` (E11) and `flooding-scaling` (E6): every metric the
//!   legacy binary measured is equal to the engine's value **bit for bit**
//!   (`f64::to_bits`; the engine additionally records the informed-overlap
//!   metrics the legacy binaries did not have, so whole-file byte equality
//!   is checked over the shared prefix of each record's metric list).
//!
//! An engine trajectory can only match the legacy loop's if the per-cell
//! seeds, model construction and measurement order are all unchanged — which
//! is exactly what these tests pin.

use std::fs;
use std::path::PathBuf;

use churn_bench::scenarios::registry;
use churn_core::flooding::{run_flooding, run_flooding_parallel, FloodingConfig, FloodingSource};
use churn_core::{DynamicNetwork, ModelKind};
use churn_observe::{LifetimeIsolation, LiveMetrics};
use churn_protocol::{RaesConfig, RaesModel};
use churn_sim::scenario::{
    run_scenario, scenario_load_path, CellRecord, GridPreset, NetSpec, RunOptions, Scenario,
};
use churn_sim::{observe_rounds, ParamPoint, Sweep};

fn run_smoke(scenario: &Scenario, tag: &str) -> (Vec<CellRecord>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("churn-golden-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let opts = RunOptions {
        preset: GridPreset::Smoke,
        dir,
        ..RunOptions::default()
    };
    let outcome = run_scenario(scenario, &opts).expect("scenario runs");
    assert_eq!(outcome.executed, outcome.total);
    (outcome.records, outcome.path)
}

/// The legacy sweep seed of a baseline cell (the pre-refactor binaries all
/// seeded through `Sweep::trial_seed`).
fn legacy_seed(
    kind: ModelKind,
    n: usize,
    d: usize,
    victim: churn_core::VictimPolicy,
    trial: usize,
    base_seed: u64,
) -> u64 {
    let sweep = Sweep::new("legacy")
        .models([kind])
        .sizes([n])
        .degrees([d])
        .trials(trial + 1)
        .base_seed(base_seed)
        .victim_policy(victim);
    sweep.trial_seed(&ParamPoint { model: kind, n, d }, trial)
}

#[test]
fn adversarial_churn_records_are_byte_identical_to_the_legacy_loop() {
    let registry = registry();
    let scenario = registry.get("adversarial-churn").unwrap();
    let (_, path) = run_smoke(scenario, "e12");

    let mut expected = String::new();
    for cell in scenario.cells(GridPreset::Smoke) {
        let NetSpec::Baseline(kind) = cell.net else {
            panic!("E12 runs on baselines");
        };
        let seed = legacy_seed(kind, cell.n, cell.d, cell.victim, cell.trial, 0xE12);
        assert_eq!(seed, scenario.cell_seed(&cell), "seed derivation unchanged");
        // The pre-refactor exp_adversarial_churn measurement body.
        let mut model = kind
            .build_with_victim(cell.n, cell.d, seed, cell.victim)
            .expect("valid parameters");
        model.warm_up();
        let metrics = LiveMetrics::new(model.graph());
        let isolated_fraction = metrics.isolated_count() as f64 / model.alive_count().max(1) as f64;
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(200),
        );
        let expected_record = CellRecord {
            scenario: scenario.name().to_string(),
            net: cell.net.label(),
            n: cell.n,
            d: cell.d,
            victim: cell.victim.label().to_string(),
            fault: None,
            trial: cell.trial,
            seed,
            metrics: vec![
                ("isolated_fraction".into(), isolated_fraction),
                (
                    "flooding_rounds".into(),
                    record.outcome.rounds().unwrap_or(200).min(200) as f64,
                ),
                ("completed".into(), f64::from(record.outcome.is_complete())),
                ("died_out".into(), f64::from(record.outcome.is_died_out())),
                ("final_fraction".into(), record.final_fraction()),
                ("peak_informed".into(), record.peak_informed() as f64),
            ],
        };
        expected.push_str(&expected_record.to_json_line());
        expected.push('\n');
    }
    assert_eq!(
        fs::read_to_string(&path).unwrap(),
        expected,
        "engine output must be byte-identical to the legacy measurement loop"
    );
    fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn isolated_nodes_records_are_byte_identical_to_the_legacy_loop() {
    let registry = registry();
    let scenario = registry.get("isolated-nodes").unwrap();
    let (_, path) = run_smoke(scenario, "e1");

    let mut expected = String::new();
    for cell in scenario.cells(GridPreset::Smoke) {
        let NetSpec::Baseline(kind) = cell.net else {
            panic!("E1 runs on baselines");
        };
        let seed = legacy_seed(kind, cell.n, cell.d, cell.victim, cell.trial, 0xE1);
        // The pre-refactor exp_isolated_nodes isolation_trial body.
        let mut model = kind
            .build_with_victim(cell.n, cell.d, seed, cell.victim)
            .expect("valid parameters");
        model.warm_up();
        let horizon = if kind.is_streaming() {
            cell.n as u64
        } else {
            3 * cell.n as u64
        };
        let alive = model.alive_count().max(1);
        let mut tracker = LifetimeIsolation::start(model.graph());
        let isolated_now = tracker.initial_isolated().len();
        observe_rounds(&mut model, horizon, |_, m, _, delta| {
            tracker.apply(m.graph(), delta);
        });
        let lifetime = tracker.finish(model.graph());
        let expected_record = CellRecord {
            scenario: scenario.name().to_string(),
            net: cell.net.label(),
            n: cell.n,
            d: cell.d,
            victim: cell.victim.label().to_string(),
            fault: None,
            trial: cell.trial,
            seed,
            metrics: vec![
                (
                    "isolated_fraction".into(),
                    isolated_now as f64 / alive as f64,
                ),
                (
                    "lifetime_fraction".into(),
                    lifetime.len() as f64 / alive as f64,
                ),
                ("horizon".into(), horizon as f64),
            ],
        };
        expected.push_str(&expected_record.to_json_line());
        expected.push('\n');
    }
    assert_eq!(
        fs::read_to_string(&path).unwrap(),
        expected,
        "engine output must be byte-identical to the legacy measurement loop"
    );
    fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn raes_flooding_metrics_match_the_legacy_loop_bit_for_bit() {
    let registry = registry();
    let scenario = registry.get("raes-flooding").unwrap();
    let (records, path) = run_smoke(scenario, "e11");

    for (cell, record) in scenario.cells(GridPreset::Smoke).iter().zip(&records) {
        let max_rounds = 8 * (cell.n as f64).log2().ceil() as u64;
        // The pre-refactor exp_raes_flooding measurement body: the RAES rows
        // built a default RaesConfig, the baselines went through the sweep's
        // build path; all flooded through the sharded parallel engine.
        let (flood, isolated_fraction, protocol) = match cell.net {
            NetSpec::Raes(_) => {
                let seed = legacy_seed(
                    ModelKind::Raes,
                    cell.n,
                    cell.d,
                    cell.victim,
                    cell.trial,
                    0xE11,
                );
                assert_eq!(seed, record.seed, "RAES cells keep the sweep seed tag");
                let mut model = RaesModel::new(RaesConfig::new(cell.n, cell.d).seed(seed)).unwrap();
                model.warm_up();
                let isolated = churn_core::isolated::isolated_now(&model).len() as f64
                    / model.alive_count().max(1) as f64;
                let flood = run_flooding_parallel(
                    &mut model,
                    FloodingSource::NextToJoin,
                    &FloodingConfig::with_max_rounds(max_rounds),
                    2,
                );
                let alive = model.alive_count().max(1);
                let protocol = vec![
                    ("max_in_degree", model.max_in_degree() as f64),
                    ("in_degree_cap", model.in_degree_cap() as f64),
                    ("rejection_rate", model.stats().rejection_rate()),
                    ("mean_repair_latency", model.stats().mean_repair_latency()),
                    (
                        "pending_backlog",
                        model.pending_requests().len() as f64 / alive as f64,
                    ),
                ];
                (flood, isolated, protocol)
            }
            NetSpec::Baseline(kind) => {
                let seed = legacy_seed(kind, cell.n, cell.d, cell.victim, cell.trial, 0xE11);
                assert_eq!(seed, record.seed);
                let mut model = kind
                    .build_with_victim(cell.n, cell.d, seed, cell.victim)
                    .unwrap();
                model.warm_up();
                let isolated = churn_core::isolated::isolated_now(&model).len() as f64
                    / model.alive_count().max(1) as f64;
                let flood = run_flooding_parallel(
                    &mut model,
                    FloodingSource::NextToJoin,
                    &FloodingConfig::with_max_rounds(max_rounds),
                    2,
                );
                (flood, isolated, Vec::new())
            }
            _ => panic!("E11 has no static/p2p nets"),
        };
        let mut expected: Vec<(&str, f64)> = vec![
            ("isolated_fraction", isolated_fraction),
            (
                "flooding_rounds",
                flood.outcome.rounds().unwrap_or(max_rounds).min(max_rounds) as f64,
            ),
            ("completed", f64::from(flood.outcome.is_complete())),
            ("died_out", f64::from(flood.outcome.is_died_out())),
            ("final_fraction", flood.final_fraction()),
            ("peak_informed", flood.peak_informed() as f64),
        ];
        expected.extend(protocol);
        for (metric, value) in expected {
            let engine = record
                .metric(metric)
                .unwrap_or_else(|| panic!("metric {metric} missing"));
            assert_eq!(
                engine.to_bits(),
                value.to_bits(),
                "{metric} must match the legacy loop bit for bit ({} {})",
                record.net,
                record.trial
            );
        }
        // The engine additionally reports the informed-overlap pipeline.
        assert!(record.metric("informed_alive_overlap").is_some());
    }
    fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn flooding_scaling_metrics_match_the_legacy_loop_bit_for_bit() {
    let registry = registry();
    let scenario = registry.get("flooding-scaling").unwrap();
    let (records, path) = run_smoke(scenario, "e6");

    for (cell, record) in scenario.cells(GridPreset::Smoke).iter().zip(&records) {
        let NetSpec::Baseline(kind) = cell.net else {
            panic!("E6 runs on baselines");
        };
        let seed = legacy_seed(kind, cell.n, cell.d, cell.victim, cell.trial, 0xE6);
        assert_eq!(seed, record.seed);
        // The pre-refactor fig_flooding_scaling trial body.
        let mut model = kind
            .build_with_victim(cell.n, cell.d, seed, cell.victim)
            .unwrap();
        model.warm_up();
        let flood = run_flooding_parallel(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
            2,
        );
        assert!(flood.outcome.is_complete(), "regeneration models complete");
        assert_eq!(
            record.metric("flooding_rounds").unwrap().to_bits(),
            (flood.outcome.rounds().unwrap() as f64).to_bits()
        );
        assert_eq!(record.metric("completed"), Some(1.0));
        assert_eq!(
            record.metric("final_fraction").unwrap().to_bits(),
            flood.final_fraction().to_bits()
        );
    }
    fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn byzantine_f0_records_reproduce_raes_flooding_bit_for_bit() {
    // The zero-adversary acceptance gate: the f = 0 column of every
    // byzantine scenario (a plain `NetSpec::raes_default()` net) must
    // reproduce the corresponding `raes-flooding` RAES record exactly —
    // same seed, same metric list, every value bit for bit. Anything the
    // behavior layer perturbs on the honest path would show up here.
    let registry = registry();
    let e11 = registry.get("raes-flooding").unwrap();
    let (e11_records, e11_path) = run_smoke(e11, "byz-anchor-e11");
    let raes_reference: Vec<&CellRecord> = e11_records.iter().filter(|r| r.net == "RAES").collect();
    assert!(!raes_reference.is_empty());

    for (name, tag) in [
        ("byzantine-raes", "byz-uniform"),
        ("byzantine-eclipse", "byz-eclipse"),
    ] {
        let scenario = registry.get(name).unwrap();
        let (records, path) = run_smoke(scenario, tag);
        let mut anchors = 0;
        for record in records.iter().filter(|r| r.net == "RAES") {
            let reference = raes_reference
                .iter()
                .find(|r| r.seed == record.seed)
                .unwrap_or_else(|| panic!("{name} f = 0 cell has no E11 twin"));
            assert_eq!(record.n, reference.n);
            assert_eq!(record.trial, reference.trial);
            assert_eq!(
                record.metrics.len(),
                reference.metrics.len(),
                "{name} f = 0 records must carry E11's exact metric schema"
            );
            for ((metric, value), (ref_metric, ref_value)) in
                record.metrics.iter().zip(&reference.metrics)
            {
                assert_eq!(metric, ref_metric);
                assert_eq!(
                    value.to_bits(),
                    ref_value.to_bits(),
                    "{name} f = 0 {metric} must match raes-flooding bit for bit"
                );
            }
            anchors += 1;
        }
        assert!(anchors > 0, "{name} smoke grid has no f = 0 anchor");
        // Corrupted rows carry the extra byzantine metric columns the
        // anchor rows must not have.
        let corrupted = records
            .iter()
            .find(|r| r.net != "RAES")
            .expect("byzantine scenarios have adversarial nets");
        assert!(corrupted.metric("byz_alive_fraction").is_some());
        assert!(corrupted.metric("honest_final_fraction").is_some());
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }
    fs::remove_dir_all(e11_path.parent().unwrap()).ok();
}

#[test]
fn async_smoke_records_replay_the_pre_chaos_fixtures_byte_for_byte() {
    // The fault layer's golden anchor: the E16 / E17 smoke files recorded
    // *before* the chaos layer existed must replay byte-identically through
    // the (now fault-aware) engines with their implicit empty `FaultPlan` —
    // the fault path consumes zero randomness when no axis is active.
    let registry = registry();
    for (name, fixture) in [
        ("async-flooding", "async-flooding.smoke.jsonl"),
        ("async-raes-load", "async-raes-load.smoke.jsonl"),
    ] {
        let scenario = registry.get(name).unwrap();
        let (_, path) = run_smoke(scenario, &format!("fixture-{name}"));
        let fixture_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(fixture);
        assert_eq!(
            fs::read(&path).unwrap(),
            fs::read(&fixture_path).unwrap(),
            "{name} smoke records must replay the recorded fixture byte for byte"
        );
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

#[test]
fn chaos_fault_free_records_reproduce_e16_bit_for_bit() {
    // The fault-rate-0 acceptance gate for the flooding-side chaos
    // scenarios: their fault-free rows must reproduce the corresponding
    // async-flooding records exactly — same seed, same metric list, every
    // value bit for bit. Fault rows must carry the extra fault columns the
    // anchors never have.
    let registry = registry();
    let e16 = registry.get("async-flooding").unwrap();
    let (e16_records, e16_path) = run_smoke(e16, "chaos-anchor-e16");
    let sdgr_reference: Vec<&CellRecord> = e16_records.iter().filter(|r| r.net == "SDGR").collect();
    assert!(!sdgr_reference.is_empty());

    for (name, tag) in [
        ("lossy-flooding", "chaos-lossy"),
        ("partition-healing", "chaos-part"),
    ] {
        let scenario = registry.get(name).unwrap();
        let (records, path) = run_smoke(scenario, tag);
        let mut anchors = 0;
        for record in records.iter().filter(|r| r.fault.is_none()) {
            let reference = sdgr_reference
                .iter()
                .find(|r| r.seed == record.seed)
                .unwrap_or_else(|| panic!("{name} fault-free cell has no E16 twin"));
            assert_eq!(record.n, reference.n);
            assert_eq!(record.trial, reference.trial);
            assert_eq!(
                record.metrics.len(),
                reference.metrics.len(),
                "{name} fault-free records must carry E16's exact metric schema"
            );
            for ((metric, value), (ref_metric, ref_value)) in
                record.metrics.iter().zip(&reference.metrics)
            {
                assert_eq!(metric, ref_metric);
                assert_eq!(
                    value.to_bits(),
                    ref_value.to_bits(),
                    "{name} fault-free {metric} must match async-flooding bit for bit"
                );
            }
            anchors += 1;
        }
        assert!(anchors > 0, "{name} smoke grid has no fault-free anchor");
        // Fault rows carry the fault counter columns the anchors lack.
        let faulty = records
            .iter()
            .find(|r| r.fault.is_some())
            .expect("chaos scenarios have fault rows");
        assert!(faulty.metric("messages_fault_lost").is_some());
        assert!(faulty.metric("redundancy_overhead").is_some());
        if name == "partition-healing" {
            assert!(faulty.metric("time_to_reheal").is_some());
            assert!(faulty.metric("partition_recovered").is_some());
            assert!(faulty.metric("anti_entropy_pulls").is_some());
        }
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }
    fs::remove_dir_all(e16_path.parent().unwrap()).ok();
}

#[test]
fn crash_restart_fault_free_records_reproduce_e17_bit_for_bit() {
    // Same gate on the RAES side: crash-restart-raes's fault-free row must
    // reproduce async-raes-load's default-net record exactly, and its chaos
    // rows must terminate (never wedge) while reporting the retry columns.
    let registry = registry();
    let e17 = registry.get("async-raes-load").unwrap();
    let (e17_records, e17_path) = run_smoke(e17, "chaos-anchor-e17");

    let scenario = registry.get("crash-restart-raes").unwrap();
    let (records, path) = run_smoke(scenario, "chaos-crash");
    let mut anchors = 0;
    for record in records.iter().filter(|r| r.fault.is_none()) {
        let reference = e17_records
            .iter()
            .find(|r| r.seed == record.seed)
            .unwrap_or_else(|| panic!("crash-restart-raes fault-free cell has no E17 twin"));
        assert_eq!(
            record.metrics.len(),
            reference.metrics.len(),
            "fault-free records must carry E17's exact metric schema"
        );
        for ((metric, value), (ref_metric, ref_value)) in
            record.metrics.iter().zip(&reference.metrics)
        {
            assert_eq!(metric, ref_metric);
            assert_eq!(
                value.to_bits(),
                ref_value.to_bits(),
                "crash-restart-raes fault-free {metric} must match async-raes-load bit for bit"
            );
        }
        anchors += 1;
    }
    assert!(anchors > 0, "crash-restart-raes smoke grid has no anchor");
    // The 30%-loss + crash row ran to completion (run_smoke asserts every
    // cell executed) and reports the retry/crash accounting.
    let chaotic = records
        .iter()
        .find(|r| r.fault.as_deref().is_some_and(|f| f.contains("loss")))
        .expect("crash-restart-raes has a lossy chaos row");
    assert!(chaotic.metric("retransmits").is_some());
    assert!(chaotic.metric("retries_exhausted").is_some());
    assert!(chaotic.metric("p99_backoff").is_some());
    assert!(chaotic.metric("crashes").is_some());
    fs::remove_dir_all(path.parent().unwrap()).ok();
    fs::remove_dir_all(e17_path.parent().unwrap()).ok();
}

#[test]
fn recorded_scenario_files_stay_byte_stable_with_load_columns_sidelined() {
    // Golden safety for the per-cell throughput columns: wall-clock data
    // must live in the non-checkpointed `.load.jsonl` side file, never in
    // the scenario records themselves — so every previously recorded file
    // (E1/E3/E6/E11/E12, byzantine f = 0 rows) replays byte-identically.
    // E1/E12 are pinned against the legacy loops above; here E3 (the widest
    // pre-existing smoke grid) is replayed twice and compared byte for byte,
    // and E3/E6/E11 main files are checked for leaked load keys.
    let registry = registry();
    let scenario = registry.get("flooding-failure").unwrap();

    let base = std::env::temp_dir().join(format!("churn-golden-e3-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let mut bytes = Vec::new();
    for sub in ["first", "second"] {
        let opts = RunOptions {
            preset: GridPreset::Smoke,
            dir: base.join(sub),
            ..RunOptions::default()
        };
        let outcome = run_scenario(scenario, &opts).expect("scenario runs");
        assert_eq!(outcome.executed, outcome.total);
        // The side file carries exactly one line per executed cell, in
        // rounds/sec for a synchronous flooding scenario.
        assert_eq!(outcome.loads.len(), outcome.executed);
        assert!(outcome.loads.iter().all(|l| l.unit == "rounds"));
        assert!(scenario_load_path(scenario, &opts).exists());
        bytes.push(fs::read(&outcome.path).unwrap());
    }
    assert_eq!(
        bytes[0], bytes[1],
        "E3 records must replay byte-identically with the load columns sidelined"
    );
    let main_text = String::from_utf8(bytes.pop().unwrap()).unwrap();
    for key in ["wall_s", "units_per_s", "events_processed"] {
        assert!(
            !main_text.contains(key),
            "{key} leaked into the checkpointed E3 records"
        );
    }
    fs::remove_dir_all(&base).ok();

    for (name, tag) in [
        ("flooding-scaling", "e6-load"),
        ("raes-flooding", "e11-load"),
    ] {
        let scenario = registry.get(name).unwrap();
        let (_, path) = run_smoke(scenario, tag);
        let text = fs::read_to_string(&path).unwrap();
        for key in ["wall_s", "units_per_s"] {
            assert!(!text.contains(key), "{key} leaked into the {name} records");
        }
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

#[test]
fn interrupted_registered_scenario_resumes_bit_identically() {
    // The sim crate pins resume determinism on a synthetic scenario; this
    // covers a *registered* one whose cells exercise the sharded parallel
    // engine and the RAES rows.
    let registry = registry();
    let scenario = registry.get("raes-flooding").unwrap();

    let base = std::env::temp_dir().join(format!("churn-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let reference = run_scenario(
        scenario,
        &RunOptions {
            preset: GridPreset::Smoke,
            dir: base.join("reference"),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let reference_bytes = fs::read(&reference.path).unwrap();

    // Kill after 4 cells, then resume.
    let interrupted = RunOptions {
        preset: GridPreset::Smoke,
        dir: base.join("resumed"),
        limit: Some(4),
        ..RunOptions::default()
    };
    let partial = run_scenario(scenario, &interrupted).unwrap();
    assert_eq!(partial.executed, 4);
    let resumed = run_scenario(
        scenario,
        &RunOptions {
            resume: true,
            limit: None,
            ..interrupted
        },
    )
    .unwrap();
    assert_eq!(resumed.skipped, 4);
    assert_eq!(
        fs::read(&resumed.path).unwrap(),
        reference_bytes,
        "resumed registered scenario must be bit-identical to an uninterrupted run"
    );
    fs::remove_dir_all(&base).ok();
}
