//! The common interface of the four dynamic network models.

use churn_graph::{DynamicGraph, NodeId, Snapshot};

use crate::{ChurnSummary, EdgePolicy, ModelEvent, ModelKind};

/// Common interface of the streaming and Poisson dynamic network models.
///
/// The unit of time is the paper's message-transmission delay: one call to
/// [`advance_time_unit`](Self::advance_time_unit) advances a streaming model by
/// exactly one round (one birth, one death) and a Poisson model by one unit of
/// continuous time (a Poisson-distributed number of churn events). This is the
/// granularity at which the flooding processes of Definitions 3.3 and 4.2
/// observe the network.
///
/// Implementations also expose their underlying [`DynamicGraph`] so analyses
/// (expansion, isolation, onion-skin) can inspect the realized topology, and the
/// birth time of every alive node so age-based arguments can be replayed.
pub trait DynamicNetwork {
    /// The realized topology at the current instant.
    fn graph(&self) -> &DynamicGraph;

    /// Mutable access to the realized topology, for **observer plumbing
    /// only**: enabling [`churn_graph::GraphDelta`] recording
    /// ([`DynamicGraph::set_delta_recording`]) and draining recorded windows
    /// ([`DynamicGraph::take_delta_into`]) between rounds. Mutating the
    /// topology itself through this handle bypasses the model's round
    /// structure (queues, regeneration, repair sweeps) and can violate its
    /// invariants — drive models through
    /// [`Self::advance_time_unit`] and friends instead.
    fn graph_mut(&mut self) -> &mut DynamicGraph;

    /// The out-degree parameter `d` every joining node uses.
    fn degree_parameter(&self) -> usize;

    /// The expected (streaming: exact, after warm-up) network size `n`.
    fn expected_size(&self) -> usize;

    /// Whether the model regenerates edges on neighbour death.
    fn edge_policy(&self) -> EdgePolicy;

    /// Which of the paper's four models (SDG, SDGR, PDG, PDGR) this instance
    /// realises.
    fn model_kind(&self) -> ModelKind;

    /// Whether the model's churn process is the *streaming* one (every node
    /// lives exactly `n` rounds), as opposed to memoryless exponential
    /// lifetimes. Analyses whose constants depend on the churn process
    /// (isolation horizons, large-set expansion bounds) branch on this, not
    /// on [`Self::model_kind`] — kinds like `ModelKind::Raes` can run either
    /// churn process, so the kind alone does not determine it.
    fn has_streaming_churn(&self) -> bool {
        self.model_kind().is_streaming()
    }

    /// Current model time: the round index for streaming models, continuous time
    /// for Poisson models.
    fn time(&self) -> f64;

    /// Number of churn steps processed so far: the round index for streaming
    /// models, the jump-chain round `r` (Definition 4.5) for Poisson models.
    fn churn_steps(&self) -> u64;

    /// Birth time of an alive node (`None` for dead or unknown nodes), in the
    /// same unit as [`Self::time`].
    fn birth_time(&self, id: NodeId) -> Option<f64>;

    /// The most recently born node, if it is still alive.
    fn newest_node(&self) -> Option<NodeId>;

    /// Advances the model by one message-transmission time unit and reports the
    /// churn that happened in it.
    fn advance_time_unit(&mut self) -> ChurnSummary;

    /// Brings the model to its stationary regime (the "for every fixed `t > n`"
    /// / "`r ≥ 7 n log n`" preconditions of the paper's statements): streaming
    /// models run until round `2 n` (full size is reached at round `n`, but the
    /// edge structure only becomes stationary once deaths have been happening
    /// for a full lifetime), Poisson models until time `3 n`. A model that is
    /// already warm is left untouched.
    fn warm_up(&mut self);

    /// Returns `true` once the stationary-regime precondition holds.
    fn is_warm(&self) -> bool;

    /// Drains the recorded [`ModelEvent`] log (empty unless event recording was
    /// enabled in the configuration).
    fn drain_events(&mut self) -> Vec<ModelEvent>;

    /// A compact immutable snapshot of the current topology.
    fn snapshot(&self) -> Snapshot {
        Snapshot::of(self.graph())
    }

    /// Number of currently alive nodes.
    fn alive_count(&self) -> usize {
        self.graph().len()
    }

    /// Returns `true` when `id` is currently alive.
    fn contains(&self, id: NodeId) -> bool {
        self.graph().contains(id)
    }

    /// Identifiers of all alive nodes, sorted increasingly.
    fn alive_ids(&self) -> Vec<NodeId> {
        self.graph().sorted_node_ids()
    }

    /// Age of an alive node in model time units (`None` for dead nodes).
    fn age(&self, id: NodeId) -> Option<f64> {
        self.birth_time(id).map(|b| self.time() - b)
    }

    /// Advances the model by `units` message-transmission time units, merging
    /// the churn summaries.
    fn advance_time_units(&mut self, units: u64) -> ChurnSummary {
        let mut summary = ChurnSummary::new();
        for _ in 0..units {
            summary.absorb(self.advance_time_unit());
        }
        summary
    }
}
