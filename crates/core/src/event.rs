//! Model events and per-step churn summaries.

use serde::{Deserialize, Serialize};

use churn_graph::{EdgeSlot, NodeId};

/// A single structural event of a dynamic network model.
///
/// Events are recorded (when [`crate::StreamingConfig::record_events`] /
/// [`crate::PoissonConfig::record_events`] is enabled) in the order they happen,
/// with the model time at which they happened, and can be drained with
/// [`crate::DynamicNetwork::drain_events`]. They are the instrumentation hook
/// used by the experiment harness and the peer-to-peer overlay example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelEvent {
    /// A node joined the network.
    NodeJoined {
        /// The new node.
        id: NodeId,
        /// Model time of the event.
        time: f64,
    },
    /// A node left the network (its lifetime expired).
    NodeDied {
        /// The departed node.
        id: NodeId,
        /// Model time of the event.
        time: f64,
    },
    /// A connection request was pointed at a target when its owner joined.
    EdgeCreated {
        /// The out-slot that was connected.
        slot: EdgeSlot,
        /// The chosen target.
        target: NodeId,
        /// Model time of the event.
        time: f64,
    },
    /// A connection was lost because one endpoint died.
    EdgeDropped {
        /// The out-slot that lost its target.
        slot: EdgeSlot,
        /// The target that disappeared.
        target: NodeId,
        /// Model time of the event.
        time: f64,
    },
    /// A dangling request was re-pointed at a fresh uniform target
    /// (only in models with edge regeneration).
    EdgeRegenerated {
        /// The out-slot that was re-connected.
        slot: EdgeSlot,
        /// The new target.
        target: NodeId,
        /// Model time of the event.
        time: f64,
    },
}

impl ModelEvent {
    /// The model time at which the event happened.
    #[must_use]
    pub fn time(&self) -> f64 {
        match self {
            ModelEvent::NodeJoined { time, .. }
            | ModelEvent::NodeDied { time, .. }
            | ModelEvent::EdgeCreated { time, .. }
            | ModelEvent::EdgeDropped { time, .. }
            | ModelEvent::EdgeRegenerated { time, .. } => *time,
        }
    }

    /// Returns `true` for churn (node-level) events.
    #[must_use]
    pub fn is_churn(&self) -> bool {
        matches!(
            self,
            ModelEvent::NodeJoined { .. } | ModelEvent::NodeDied { .. }
        )
    }

    /// Returns `true` for topology (edge-level) events.
    #[must_use]
    pub fn is_topology(&self) -> bool {
        !self.is_churn()
    }
}

/// Summary of the churn that happened during one call to
/// [`crate::DynamicNetwork::advance_time_unit`].
///
/// The flooding process needs exactly this information: which nodes appeared
/// (they cannot have been informed before the interval) and which disappeared
/// (they drop out of the informed set), per Definitions 3.3 and 4.2.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSummary {
    /// Nodes that joined during the interval and are still alive at its end.
    pub births: Vec<NodeId>,
    /// Nodes that died during the interval.
    pub deaths: Vec<NodeId>,
}

impl ChurnSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another summary into this one, keeping the net effect: a node that
    /// both joined and died within the merged window is dropped from `births`
    /// and kept in `deaths` only if it was alive before the window.
    pub fn absorb(&mut self, later: ChurnSummary) {
        for death in later.deaths {
            if let Some(pos) = self.births.iter().position(|&b| b == death) {
                // Born and dead within the merged window: it never existed as far
                // as interval endpoints are concerned.
                self.births.swap_remove(pos);
            } else {
                self.deaths.push(death);
            }
        }
        self.births.extend(later.births);
    }

    /// Empties the summary while keeping the vectors' capacity, so a
    /// caller-owned summary can be reused across steps without reallocating
    /// (see `RaesModel::step_round_into` in `churn-protocol`).
    pub fn clear(&mut self) {
        self.births.clear();
        self.deaths.clear();
    }

    /// Records a birth observed while accumulating a summary in place.
    pub fn record_birth(&mut self, id: NodeId) {
        self.births.push(id);
    }

    /// Records a death observed while accumulating a summary in place, with
    /// the same net-effect semantics as [`Self::absorb`]: a node that was born
    /// within this summary's window simply vanishes from `births`.
    pub fn record_death(&mut self, id: NodeId) {
        if let Some(pos) = self.births.iter().position(|&b| b == id) {
            self.births.swap_remove(pos);
        } else {
            self.deaths.push(id);
        }
    }

    /// Total number of churn events summarised.
    #[must_use]
    pub fn churn_count(&self) -> usize {
        self.births.len() + self.deaths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn event_accessors() {
        let slot = EdgeSlot {
            owner: id(1),
            slot: 0,
        };
        let events = [
            ModelEvent::NodeJoined {
                id: id(1),
                time: 1.0,
            },
            ModelEvent::NodeDied {
                id: id(1),
                time: 2.0,
            },
            ModelEvent::EdgeCreated {
                slot,
                target: id(2),
                time: 3.0,
            },
            ModelEvent::EdgeDropped {
                slot,
                target: id(2),
                time: 4.0,
            },
            ModelEvent::EdgeRegenerated {
                slot,
                target: id(3),
                time: 5.0,
            },
        ];
        let times: Vec<f64> = events.iter().map(ModelEvent::time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(events[0].is_churn() && events[1].is_churn());
        assert!(events[2].is_topology() && events[4].is_topology());
    }

    #[test]
    fn churn_summary_absorb_cancels_short_lived_nodes() {
        let mut first = ChurnSummary {
            births: vec![id(10)],
            deaths: vec![id(1)],
        };
        let second = ChurnSummary {
            births: vec![id(11)],
            deaths: vec![id(10), id(2)],
        };
        first.absorb(second);
        assert_eq!(first.births, vec![id(11)]);
        let mut deaths = first.deaths.clone();
        deaths.sort();
        assert_eq!(deaths, vec![id(1), id(2)]);
        assert_eq!(first.churn_count(), 3);
    }

    #[test]
    fn empty_summary_has_no_churn() {
        let s = ChurnSummary::new();
        assert_eq!(s.churn_count(), 0);
        assert!(s.births.is_empty() && s.deaths.is_empty());
    }
}
