//! # churn-core
//!
//! The primary contribution of *"Expansion and Flooding in Dynamic Random
//! Networks with Node Churn"* (Becchetti, Clementi, Pasquale, Trevisan,
//! Ziccardi — ICDCS 2021), implemented as a simulation library: four dynamic
//! random-graph models with node churn, the flooding process over them, and the
//! structural analyses (vertex expansion, isolated nodes, onion-skin growth)
//! that the paper's theorems are about.
//!
//! ## The four models
//!
//! | | no edge regeneration | edge regeneration |
//! |---|---|---|
//! | streaming churn | **SDG** ([`StreamingModel`] + [`EdgePolicy::Static`]) | **SDGR** ([`StreamingModel`] + [`EdgePolicy::Regenerate`]) |
//! | Poisson churn | **PDG** ([`PoissonModel`] + [`EdgePolicy::Static`]) | **PDGR** ([`PoissonModel`] + [`EdgePolicy::Regenerate`]) |
//!
//! * *Streaming churn* (Definition 3.2): at every round one node joins and the
//!   node that joined `n` rounds ago leaves; every node lives exactly `n` rounds.
//! * *Poisson churn* (Definition 4.1): nodes arrive as a Poisson process with
//!   rate λ and live for an exponential time with rate µ; the expected
//!   population is `n = λ/µ`.
//! * *Topology dynamics* (Definitions 3.4, 3.13, 4.9, 4.14): a joining node
//!   opens `d` connection requests to uniformly random alive nodes; edges vanish
//!   with either endpoint; with [`EdgePolicy::Regenerate`] a node immediately
//!   replaces a request whose target died by a fresh uniformly random one.
//!
//! ## What you can do with a model
//!
//! * advance it round by round or by whole message-delay units
//!   ([`DynamicNetwork::advance_time_unit`]),
//! * run the [`flooding`] process of Definitions 3.3 / 4.2 and measure how far
//!   and how fast information spreads,
//! * measure vertex [`expansion`] of snapshots and the census of
//!   [`isolated`] nodes,
//! * replay the paper's [`onion_skin`] argument on realized graphs,
//! * compare everything against the closed-form predictions in [`theory`].
//!
//! ## Quick start
//!
//! ```
//! use churn_core::{EdgePolicy, StreamingConfig, StreamingModel, DynamicNetwork};
//! use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
//!
//! # fn main() -> Result<(), churn_core::ModelError> {
//! // An SDGR network with n = 200 nodes of degree d = 8.
//! let config = StreamingConfig::new(200, 8)
//!     .edge_policy(EdgePolicy::Regenerate)
//!     .seed(42);
//! let mut model = StreamingModel::new(config)?;
//! model.warm_up();
//!
//! let record = run_flooding(
//!     &mut model,
//!     FloodingSource::NextToJoin,
//!     &FloodingConfig::default(),
//! );
//! assert!(record.outcome.is_complete(), "SDGR floods everyone quickly");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alive;
mod any;
mod config;
mod error;
mod event;
mod model;
mod poisson;
mod streaming;

pub mod driver;
pub mod expansion;
pub mod flooding;
pub mod isolated;
pub mod onion_skin;
pub mod theory;

pub use alive::AliveSet;
pub use any::{AnyModel, ModelKind};
pub use config::{EdgePolicy, PoissonConfig, StreamingConfig, MIN_NETWORK_SIZE};
pub use error::ModelError;
pub use event::{ChurnSummary, ModelEvent};
pub use model::DynamicNetwork;
pub use poisson::PoissonModel;
pub use streaming::StreamingModel;

pub use driver::VictimPolicy;

// Re-export the identifiers users constantly need alongside the models.
pub use churn_graph::{DynamicGraph, EdgeSlot, GraphDelta, GraphError, NodeId, Snapshot};

/// Convenience result alias for model construction.
pub type Result<T, E = ModelError> = std::result::Result<T, E>;
