//! Model-kind enumeration and a type-erased model wrapper for sweeps.

use serde::{Deserialize, Serialize};

use churn_graph::{DynamicGraph, NodeId};

use crate::model::DynamicNetwork;
use crate::{
    ChurnSummary, EdgePolicy, ModelEvent, PoissonConfig, PoissonModel, Result, StreamingConfig,
    StreamingModel,
};

/// The four dynamic network models of the paper (Table 1's columns × rows),
/// plus the RAES maintenance protocol layered on top of them by the
/// `churn-protocol` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Streaming churn, no edge regeneration (Definition 3.4).
    Sdg,
    /// Streaming churn, edge regeneration (Definition 3.13).
    Sdgr,
    /// Poisson churn, no edge regeneration (Definition 4.9).
    Pdg,
    /// Poisson churn, edge regeneration (Definition 4.14).
    Pdgr,
    /// The RAES request/accept/reject protocol: bounded in-degree expander
    /// maintenance under churn. Not one of the paper's four models — it is
    /// implemented downstream in `churn-protocol` (so [`ModelKind::build`]
    /// cannot construct it), but it shares this enum so sweeps, stored records
    /// and reports can mix it with the baselines.
    Raes,
}

impl ModelKind {
    /// The paper's four models, in the paper's presentation order (RAES, being
    /// a protocol extension rather than a paper model, is deliberately not
    /// part of this baseline list).
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Sdg,
        ModelKind::Sdgr,
        ModelKind::Pdg,
        ModelKind::Pdgr,
    ];

    /// Returns `true` for the streaming-churn baseline models.
    ///
    /// [`ModelKind::Raes`] returns `false` from both this and
    /// [`Self::is_poisson`]: the kind does not encode which churn driver a
    /// `RaesModel` runs (that lives in its `RaesConfig`). Code that branches
    /// on the churn *process* should use
    /// [`crate::DynamicNetwork::has_streaming_churn`] — which RAES overrides
    /// with its configured driver — instead of these kind predicates.
    #[must_use]
    pub fn is_streaming(self) -> bool {
        matches!(self, ModelKind::Sdg | ModelKind::Sdgr)
    }

    /// Returns `true` for the Poisson-churn baseline models (see
    /// [`Self::is_streaming`] for the RAES caveat).
    #[must_use]
    pub fn is_poisson(self) -> bool {
        matches!(self, ModelKind::Pdg | ModelKind::Pdgr)
    }

    /// The edge policy of the model. RAES actively repairs severed links
    /// (through its request/accept protocol rather than instant resampling),
    /// so it reports [`EdgePolicy::Regenerate`].
    #[must_use]
    pub fn edge_policy(self) -> EdgePolicy {
        match self {
            ModelKind::Sdg | ModelKind::Pdg => EdgePolicy::Static,
            ModelKind::Sdgr | ModelKind::Pdgr | ModelKind::Raes => EdgePolicy::Regenerate,
        }
    }

    /// The acronym used throughout the paper (and this workspace's reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Sdg => "SDG",
            ModelKind::Sdgr => "SDGR",
            ModelKind::Pdg => "PDG",
            ModelKind::Pdgr => "PDGR",
            ModelKind::Raes => "RAES",
        }
    }

    /// Builds a model of this kind with expected size `n`, degree `d` and the
    /// given seed. Poisson models use the paper's normalisation λ = 1, µ = 1/n.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors. [`ModelKind::Raes`] returns
    /// [`crate::ModelError::ExternalModelKind`]: the protocol model lives in
    /// the downstream `churn-protocol` crate (build a `RaesModel` there
    /// instead).
    pub fn build(self, n: usize, d: usize, seed: u64) -> Result<AnyModel> {
        self.build_with_victim(n, d, seed, crate::driver::VictimPolicy::Uniform)
    }

    /// Like [`Self::build`], with an explicit death-victim policy.
    ///
    /// Streaming kinds accept [`VictimPolicy::OldestFirst`] as a no-op (their
    /// death schedule already is oldest-first, Definition 3.2) and reject
    /// [`VictimPolicy::HighestDegree`] — it would break the exact-lifetime
    /// law. Poisson kinds run any policy through the shared adversarial
    /// selectors in [`crate::driver`].
    ///
    /// [`VictimPolicy::OldestFirst`]: crate::driver::VictimPolicy::OldestFirst
    /// [`VictimPolicy::HighestDegree`]: crate::driver::VictimPolicy::HighestDegree
    ///
    /// # Errors
    ///
    /// As [`Self::build`], plus [`crate::ModelError::UnsupportedVictimPolicy`]
    /// for a streaming kind with degree-targeted deaths.
    pub fn build_with_victim(
        self,
        n: usize,
        d: usize,
        seed: u64,
        victim: crate::driver::VictimPolicy,
    ) -> Result<AnyModel> {
        use crate::driver::VictimPolicy;
        match self {
            ModelKind::Sdg | ModelKind::Sdgr => {
                if victim == VictimPolicy::HighestDegree {
                    return Err(crate::ModelError::UnsupportedVictimPolicy {
                        kind: self.label(),
                        policy: victim.label(),
                    });
                }
                let config = StreamingConfig::new(n, d)
                    .edge_policy(self.edge_policy())
                    .seed(seed);
                Ok(AnyModel::Streaming(StreamingModel::new(config)?))
            }
            ModelKind::Pdg | ModelKind::Pdgr => {
                let config = PoissonConfig::with_expected_size(n, d)
                    .edge_policy(self.edge_policy())
                    .seed(seed)
                    .victim_policy(victim);
                Ok(AnyModel::Poisson(PoissonModel::new(config)?))
            }
            ModelKind::Raes => Err(crate::ModelError::ExternalModelKind {
                kind: self.label(),
                implemented_in: "churn-protocol",
            }),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SDG" => Ok(ModelKind::Sdg),
            "SDGR" => Ok(ModelKind::Sdgr),
            "PDG" => Ok(ModelKind::Pdg),
            "PDGR" => Ok(ModelKind::Pdgr),
            "RAES" => Ok(ModelKind::Raes),
            other => Err(format!(
                "unknown model kind {other:?} (expected SDG, SDGR, PDG, PDGR or RAES)"
            )),
        }
    }
}

/// A type-erased dynamic network model, convenient for parameter sweeps that
/// iterate over [`ModelKind::ALL`].
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// A streaming-churn model (SDG or SDGR).
    Streaming(StreamingModel),
    /// A Poisson-churn model (PDG or PDGR).
    Poisson(PoissonModel),
}

impl AnyModel {
    /// Which of the paper's four models this instance realises.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        match self {
            AnyModel::Streaming(m) => m.model_kind(),
            AnyModel::Poisson(m) => m.model_kind(),
        }
    }

    /// Borrows the inner streaming model, if this is one.
    #[must_use]
    pub fn as_streaming(&self) -> Option<&StreamingModel> {
        match self {
            AnyModel::Streaming(m) => Some(m),
            AnyModel::Poisson(_) => None,
        }
    }

    /// Borrows the inner Poisson model, if this is one.
    #[must_use]
    pub fn as_poisson(&self) -> Option<&PoissonModel> {
        match self {
            AnyModel::Poisson(m) => Some(m),
            AnyModel::Streaming(_) => None,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyModel::Streaming($m) => $body,
            AnyModel::Poisson($m) => $body,
        }
    };
}

impl DynamicNetwork for AnyModel {
    fn graph(&self) -> &DynamicGraph {
        delegate!(self, m => m.graph())
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        delegate!(self, m => m.graph_mut())
    }

    fn degree_parameter(&self) -> usize {
        delegate!(self, m => m.degree_parameter())
    }

    fn expected_size(&self) -> usize {
        delegate!(self, m => m.expected_size())
    }

    fn edge_policy(&self) -> EdgePolicy {
        delegate!(self, m => m.edge_policy())
    }

    fn model_kind(&self) -> ModelKind {
        AnyModel::kind(self)
    }

    fn time(&self) -> f64 {
        delegate!(self, m => m.time())
    }

    fn churn_steps(&self) -> u64 {
        delegate!(self, m => m.churn_steps())
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        delegate!(self, m => m.birth_time(id))
    }

    fn newest_node(&self) -> Option<NodeId> {
        delegate!(self, m => m.newest_node())
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        delegate!(self, m => m.advance_time_unit())
    }

    fn warm_up(&mut self) {
        delegate!(self, m => m.warm_up())
    }

    fn is_warm(&self) -> bool {
        delegate!(self, m => m.is_warm())
    }

    fn drain_events(&mut self) -> Vec<ModelEvent> {
        delegate!(self, m => m.drain_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parsing_round_trip() {
        for kind in ModelKind::ALL {
            let parsed: ModelKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert!("XYZ".parse::<ModelKind>().is_err());
        assert_eq!("sdgr".parse::<ModelKind>().unwrap(), ModelKind::Sdgr);
    }

    #[test]
    fn raes_kind_is_a_label_only_extension() {
        assert_eq!("raes".parse::<ModelKind>().unwrap(), ModelKind::Raes);
        assert_eq!(ModelKind::Raes.label(), "RAES");
        assert!(!ModelKind::Raes.is_streaming() && !ModelKind::Raes.is_poisson());
        assert!(ModelKind::Raes.edge_policy().regenerates());
        assert!(
            !ModelKind::ALL.contains(&ModelKind::Raes),
            "ALL stays the paper's four baseline models"
        );
        assert!(matches!(
            ModelKind::Raes.build(100, 8, 0),
            Err(crate::ModelError::ExternalModelKind { kind: "RAES", .. })
        ));
    }

    #[test]
    fn kind_properties_match_table_1() {
        assert!(ModelKind::Sdg.is_streaming() && !ModelKind::Sdg.edge_policy().regenerates());
        assert!(ModelKind::Sdgr.is_streaming() && ModelKind::Sdgr.edge_policy().regenerates());
        assert!(ModelKind::Pdg.is_poisson() && !ModelKind::Pdg.edge_policy().regenerates());
        assert!(ModelKind::Pdgr.is_poisson() && ModelKind::Pdgr.edge_policy().regenerates());
    }

    #[test]
    fn build_produces_the_right_variant() {
        for kind in ModelKind::ALL {
            let model = kind.build(64, 3, 7).unwrap();
            assert_eq!(model.kind(), kind);
            assert_eq!(model.expected_size(), 64);
            assert_eq!(model.degree_parameter(), 3);
            match kind {
                ModelKind::Sdg | ModelKind::Sdgr => {
                    assert!(model.as_streaming().is_some());
                    assert!(model.as_poisson().is_none());
                }
                ModelKind::Pdg | ModelKind::Pdgr => {
                    assert!(model.as_poisson().is_some());
                    assert!(model.as_streaming().is_none());
                }
                ModelKind::Raes => unreachable!("ALL holds only the paper's four models"),
            }
        }
    }

    #[test]
    fn build_rejects_invalid_parameters() {
        assert!(ModelKind::Sdg.build(1, 3, 0).is_err());
        assert!(ModelKind::Pdgr.build(100, 0, 0).is_err());
    }

    #[test]
    fn any_model_advances_like_the_inner_model() {
        let mut any = ModelKind::Sdgr.build(50, 3, 5).unwrap();
        any.warm_up();
        assert!(any.is_warm());
        assert_eq!(any.alive_count(), 50);
        let summary = any.advance_time_unit();
        assert_eq!(summary.births.len(), 1);
        assert_eq!(summary.deaths.len(), 1);

        let mut any = ModelKind::Pdg.build(100, 3, 5).unwrap();
        any.warm_up();
        assert!(any.is_warm());
        assert!(any.alive_count() > 0);
        assert!(any.time() >= 300.0);
    }
}
