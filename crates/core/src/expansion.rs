//! Vertex-expansion measurements on dynamic network snapshots.
//!
//! Bridges the models of this crate with the candidate-set expansion estimator
//! of [`churn_graph::expansion`], pre-configuring the size ranges the paper's
//! statements are about:
//!
//! * [`SizeRange::Full`] — all sets with `1 ≤ |S| ≤ n/2`, the range of the
//!   regeneration-model expansion theorems (3.15 and 4.16);
//! * [`SizeRange::LargeSets`] — only sets with `n·e^{−d/10} ≤ |S| ≤ n/2`
//!   (streaming) or `n·e^{−d/20} ≤ |S| ≤ n/2` (Poisson), the weaker property
//!   that still holds *without* regeneration (Lemmas 3.6 and 4.11);
//! * [`SizeRange::Custom`] — any explicit range.

use rand::Rng;
use serde::{Deserialize, Serialize};

use churn_graph::expansion::{ExpansionConfig, ExpansionEstimate, ExpansionEstimator};

use crate::model::DynamicNetwork;

/// Which subset sizes an expansion measurement ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeRange {
    /// Every size from 1 to `n/2` (Theorems 3.15 / 4.16).
    Full,
    /// Only "large" sets, from the paper's `n·e^{−d/10}` (streaming) or
    /// `n·e^{−d/20}` (Poisson) up to `n/2` (Lemmas 3.6 / 4.11).
    LargeSets,
    /// An explicit `[min, max]` size range.
    Custom {
        /// Smallest set size considered.
        min: usize,
        /// Largest set size considered.
        max: usize,
    },
}

impl SizeRange {
    /// Resolves the range to concrete `(min, max)` bounds for a model's current
    /// snapshot size.
    #[must_use]
    pub fn bounds<M: DynamicNetwork>(&self, model: &M) -> (usize, usize) {
        self.bounds_for(
            model.alive_count(),
            model.degree_parameter(),
            model.has_streaming_churn(),
        )
    }

    /// Resolves the range from raw parameters — for callers measuring on a
    /// snapshot maintained *outside* the model (e.g. an incrementally patched
    /// `churn-observe` snapshot) where no model reference is at hand.
    #[must_use]
    pub fn bounds_for(&self, alive: usize, d: usize, streaming_churn: bool) -> (usize, usize) {
        let half = (alive / 2).max(1);
        match *self {
            SizeRange::Full => (1, half),
            SizeRange::LargeSets => {
                let d = d as f64;
                let exponent = if streaming_churn {
                    -d / 10.0
                } else {
                    -d / 20.0
                };
                let min = (alive as f64 * exponent.exp()).ceil() as usize;
                (min.clamp(1, half), half)
            }
            SizeRange::Custom { min, max } => (min.max(1), max.min(half).max(1)),
        }
    }
}

/// Result of one expansion measurement on one snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionReport {
    /// The underlying candidate-set estimate.
    pub estimate: ExpansionEstimate,
    /// Number of alive nodes in the measured snapshot.
    pub alive: usize,
    /// The concrete `(min, max)` size bounds that were searched.
    pub size_bounds: (usize, usize),
    /// Model time of the measurement.
    pub time: f64,
}

impl ExpansionReport {
    /// The estimated minimum expansion ratio (an upper bound on `h_out` over the
    /// searched range), or `None` when the range was empty.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.estimate.value()
    }

    /// Whether the estimate clears the paper's 0.1 expansion threshold.
    #[must_use]
    pub fn meets_paper_threshold(&self) -> bool {
        self.estimate.at_least(crate::theory::EXPANSION_THRESHOLD)
    }
}

/// Measures the vertex expansion of the model's current snapshot over the given
/// size range.
pub fn measure_expansion<M: DynamicNetwork, R: Rng + ?Sized>(
    model: &M,
    range: SizeRange,
    config: &ExpansionConfig,
    rng: &mut R,
) -> ExpansionReport {
    let snapshot = model.snapshot();
    let (min, max) = range.bounds(model);
    measure_expansion_on(&snapshot, (min, max), config, rng, model.time())
}

/// Measures the vertex expansion of a caller-supplied snapshot over explicit
/// size bounds (resolve them with [`SizeRange::bounds_for`]).
///
/// This is the entry point for observation pipelines that keep the snapshot
/// *incremental* (`churn-observe`): the per-round maintenance stays O(churn)
/// and only an actual expansion measurement pays the materialisation — the
/// model is never asked to rebuild a CSR view it already has.
pub fn measure_expansion_on<R: Rng + ?Sized>(
    snapshot: &churn_graph::Snapshot,
    bounds: (usize, usize),
    config: &ExpansionConfig,
    rng: &mut R,
    time: f64,
) -> ExpansionReport {
    let (min, max) = bounds;
    let estimate = ExpansionEstimator::new(config.clone()).estimate(snapshot, min, max, rng);
    ExpansionReport {
        estimate,
        alive: snapshot.len(),
        size_bounds: (min, max),
        time,
    }
}

/// Measures expansion repeatedly while the model keeps evolving: one measurement
/// every `interval` time units, `samples` times. The model is advanced in place.
pub fn expansion_trajectory<M: DynamicNetwork, R: Rng + ?Sized>(
    model: &mut M,
    samples: usize,
    interval: u64,
    range: SizeRange,
    config: &ExpansionConfig,
    rng: &mut R,
) -> Vec<ExpansionReport> {
    let mut reports = Vec::with_capacity(samples);
    for i in 0..samples {
        if i > 0 {
            model.advance_time_units(interval);
        }
        reports.push(measure_expansion(model, range, config, rng));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicNetwork, EdgePolicy, StreamingConfig, StreamingModel};
    use churn_stochastic::rng::seeded_rng;

    fn warm_model(n: usize, d: usize, policy: EdgePolicy, seed: u64) -> StreamingModel {
        let mut m =
            StreamingModel::new(StreamingConfig::new(n, d).edge_policy(policy).seed(seed)).unwrap();
        m.warm_up();
        for _ in 0..n {
            m.advance_time_unit();
        }
        m
    }

    #[test]
    fn size_range_bounds_are_sane() {
        let model = warm_model(200, 10, EdgePolicy::Static, 1);
        let (min, max) = SizeRange::Full.bounds(&model);
        assert_eq!((min, max), (1, 100));
        let (min, max) = SizeRange::LargeSets.bounds(&model);
        assert!(min >= 1 && min <= max);
        // e^{-1} * 200 ≈ 74 for d = 10 in the streaming model.
        assert!((70..=80).contains(&min), "large-set lower bound {min}");
        let (min, max) = SizeRange::Custom { min: 5, max: 5000 }.bounds(&model);
        assert_eq!((min, max), (5, 100));
    }

    #[test]
    fn sdgr_full_range_expansion_beats_sdg() {
        // The qualitative heart of Table 1: with regeneration every snapshot
        // expands, without it the isolated nodes destroy full-range expansion.
        let mut rng = seeded_rng(7);
        let config = ExpansionConfig::fast();
        let sdg = warm_model(300, 4, EdgePolicy::Static, 2);
        let sdgr = warm_model(300, 4, EdgePolicy::Regenerate, 2);
        let sdg_report = measure_expansion(&sdg, SizeRange::Full, &config, &mut rng);
        let sdgr_report = measure_expansion(&sdgr, SizeRange::Full, &config, &mut rng);
        let sdg_value = sdg_report.value().unwrap();
        let sdgr_value = sdgr_report.value().unwrap();
        assert!(
            sdgr_value > sdg_value,
            "SDGR expansion ({sdgr_value}) should exceed SDG expansion ({sdg_value})"
        );
        assert_eq!(
            sdg_value, 0.0,
            "SDG with d = 4 contains isolated nodes, so the full-range minimum is 0"
        );
    }

    #[test]
    fn large_set_range_hides_isolated_nodes() {
        // Lemma 3.6: even SDG expands once sets smaller than n e^{-d/10} are
        // excluded (isolated singletons are below the threshold for small d...
        // here we use d large enough that the threshold is tiny but singletons
        // are still excluded because min size > 1).
        let model = warm_model(300, 24, EdgePolicy::Static, 3);
        let mut rng = seeded_rng(8);
        let report = measure_expansion(
            &model,
            SizeRange::LargeSets,
            &ExpansionConfig::fast(),
            &mut rng,
        );
        let value = report.value().unwrap();
        assert!(
            value > 0.0,
            "large subsets of a d = 24 SDG snapshot should expand, got {value}"
        );
        assert!(report.size_bounds.0 > 1);
    }

    #[test]
    fn trajectory_produces_requested_samples_and_advances_model() {
        let mut model = warm_model(100, 6, EdgePolicy::Regenerate, 4);
        let time_before = model.time();
        let mut rng = seeded_rng(9);
        let reports = expansion_trajectory(
            &mut model,
            4,
            10,
            SizeRange::Full,
            &ExpansionConfig::fast(),
            &mut rng,
        );
        assert_eq!(reports.len(), 4);
        assert!((model.time() - time_before - 30.0).abs() < 1e-9);
        for w in reports.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
        for r in &reports {
            assert_eq!(r.alive, 100);
            assert!(r.value().is_some());
        }
    }

    #[test]
    fn report_threshold_helper_matches_value() {
        let model = warm_model(200, 8, EdgePolicy::Regenerate, 5);
        let mut rng = seeded_rng(10);
        let report = measure_expansion(&model, SizeRange::Full, &ExpansionConfig::fast(), &mut rng);
        assert_eq!(
            report.meets_paper_threshold(),
            report.value().unwrap() >= 0.1
        );
    }
}
