//! The onion-skin process of Section 3.1.2, replayed on realized graphs.
//!
//! The onion-skin process is the paper's key analytical device for the positive
//! flooding result *without* edge regeneration (Theorem 3.8): starting from the
//! newly joined source, it grows a bipartite subgraph that alternates between
//! *young* nodes (age below `n/2`) and *old* nodes (age between `n/2` and
//! `n − log n`), and alternates between the second half ("type-B") and first
//! half ("type-A") of each node's `d` requests. Claim 3.10 shows each phase
//! multiplies the newly reached sets by roughly `d/20`, which yields the
//! `O(log n / log d)` bound of Lemma 3.9.
//!
//! [`run_onion_skin`] replays exactly this restricted exploration on the
//! *realized* SDG graph, so experiment E9 can measure the per-phase growth
//! factors and compare them with the `d/20` prediction.

use serde::{Deserialize, Serialize};

use churn_graph::NodeId;

use crate::model::DynamicNetwork;
use crate::StreamingModel;

/// Age-class of a node in the onion-skin construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgeClass {
    /// Age below `n/2` (the paper's set `Y`, excluding the very youngest ages 0
    /// and 1 which the construction treats separately).
    Young,
    /// Age in `[n/2, n − log n]` (the paper's set `O`).
    Old,
    /// Age above `n − log n` (the paper's set `Ô`; about to die, never used).
    VeryOld,
}

/// Growth observed in one phase of the onion-skin process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnionSkinPhase {
    /// Phase index (0 is the source's own phase).
    pub phase: usize,
    /// Young nodes newly reached in this phase (0 in phase 0).
    pub new_young: usize,
    /// Old nodes newly reached in this phase.
    pub new_old: usize,
    /// Cumulative young nodes reached after this phase (including the source).
    pub young_total: usize,
    /// Cumulative old nodes reached after this phase.
    pub old_total: usize,
}

/// Full trace of one onion-skin run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnionSkinTrace {
    /// The source node (the most recently joined node).
    pub source: NodeId,
    /// Number of alive nodes classified as young.
    pub young_population: usize,
    /// Number of alive nodes classified as old.
    pub old_population: usize,
    /// Number of alive nodes classified as very old.
    pub very_old_population: usize,
    /// Per-phase growth, phase 0 first.
    pub phases: Vec<OnionSkinPhase>,
}

impl OnionSkinTrace {
    /// Total nodes reached by the construction (young + old, including the
    /// source).
    #[must_use]
    pub fn reached(&self) -> usize {
        self.phases
            .last()
            .map_or(1, |p| p.young_total + p.old_total)
    }

    /// Per-phase growth factors `|new layer| / |previous layer|` of the old-node
    /// frontier, skipping phases where the previous layer was empty. Claim 3.10
    /// predicts these stay around `d/20` while the frontier is below `n/d`.
    #[must_use]
    pub fn old_growth_factors(&self) -> Vec<f64> {
        let mut factors = Vec::new();
        for w in self.phases.windows(2) {
            if w[0].new_old > 0 {
                factors.push(w[1].new_old as f64 / w[0].new_old as f64);
            }
        }
        factors
    }

    /// Number of phases executed (including phase 0).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

/// Classifies a node's age for the onion-skin construction.
#[must_use]
pub fn classify_age(age: u64, n: usize) -> AgeClass {
    let n_f = n as u64;
    let log_n = (n as f64).ln().floor().max(1.0) as u64;
    let half = n_f / 2;
    if age < half {
        AgeClass::Young
    } else if age <= n_f.saturating_sub(log_n) {
        AgeClass::Old
    } else {
        AgeClass::VeryOld
    }
}

/// Age-class codes of the dense per-slab-cell classification table.
const CLASS_YOUNG: u8 = 0;
const CLASS_OLD: u8 = 1;
const CLASS_VERY_OLD: u8 = 2;
const CLASS_VACANT: u8 = 3;

/// Replays the onion-skin process on the current snapshot of a streaming model
/// (the construction is defined for the SDG model; it also runs on SDGR graphs,
/// where it is simply a further restriction of the realized edges).
///
/// The source is the most recently joined node. The process stops when a phase
/// adds no new node or when the reached set exceeds `n` (it cannot, but the
/// guard keeps the loop finite).
///
/// The construction runs entirely on the graph's dense slab indices — age
/// classes, reached sets and frontiers are flat arrays indexed by slab cell,
/// and adjacency is walked through the allocation-free
/// [`churn_graph::DynamicGraph::out_slot_targets_at`] — so one replay costs
/// `O(n·d)` per phase with no hashing, which is what lets experiment E9
/// follow the flooding binaries to `n = 10^6`.
#[must_use]
pub fn run_onion_skin(model: &StreamingModel) -> OnionSkinTrace {
    let n = model.expected_size();
    let d = model.degree_parameter();
    let half_d = (d / 2).max(1);
    let graph = model.graph();
    let source = model
        .newest_node()
        .expect("a warmed streaming model always has nodes");
    let source_idx = graph
        .dense_index_of(source)
        .expect("the newest node is alive");
    let slab_len = graph.slab_len();

    // Classify the population into a slab-indexed table.
    let mut young_population = 0usize;
    let mut old_population = 0usize;
    let mut very_old_population = 0usize;
    let mut class = vec![CLASS_VACANT; slab_len];
    for &idx in graph.member_indices() {
        let id = graph.id_at(idx).expect("member cells are occupied");
        let age = model.age_rounds(id).expect("alive node has an age");
        class[idx as usize] = match classify_age(age, n) {
            AgeClass::Young => {
                young_population += 1;
                CLASS_YOUNG
            }
            AgeClass::Old => {
                old_population += 1;
                CLASS_OLD
            }
            AgeClass::VeryOld => {
                very_old_population += 1;
                CLASS_VERY_OLD
            }
        };
    }

    let mut young_reached = vec![false; slab_len];
    let mut old_reached = vec![false; slab_len];
    young_reached[source_idx as usize] = true;
    let mut young_total = 1usize;

    // Phase 0: the source's own d requests, restricted to old destinations.
    let mut in_old_frontier = vec![false; slab_len];
    let mut old_frontier: Vec<u32> = Vec::new();
    for target in graph.out_slot_targets_at(source_idx).flatten() {
        let t = target as usize;
        if class[t] == CLASS_OLD && !in_old_frontier[t] {
            in_old_frontier[t] = true;
            old_reached[t] = true;
            old_frontier.push(target);
        }
    }
    let mut old_total = old_frontier.len();

    let mut phases = vec![OnionSkinPhase {
        phase: 0,
        new_young: 0,
        new_old: old_frontier.len(),
        young_total,
        old_total,
    }];

    // Subsequent phases alternate: young nodes reach the old frontier via their
    // type-B requests (slots d/2..d), then the newly reached young nodes extend
    // the old set via their type-A requests (slots 0..d/2).
    let mut guard = 0usize;
    loop {
        guard += 1;
        if old_frontier.is_empty() || guard > n {
            break;
        }

        // Step 1: young nodes not yet reached whose type-B requests hit the old
        // frontier.
        let mut young_frontier: Vec<u32> = Vec::new();
        for &v in graph.member_indices() {
            if class[v as usize] != CLASS_YOUNG || young_reached[v as usize] {
                continue;
            }
            let hits_frontier = graph
                .out_slot_targets_at(v)
                .skip(half_d)
                .flatten()
                .any(|t| in_old_frontier[t as usize]);
            if hits_frontier {
                young_frontier.push(v);
            }
        }

        // Step 2: old nodes not yet reached that are type-A targets of the newly
        // reached young nodes (marking on insertion deduplicates).
        let mut next_old_frontier: Vec<u32> = Vec::new();
        for &v in &young_frontier {
            for target in graph.out_slot_targets_at(v).take(half_d).flatten() {
                let t = target as usize;
                if class[t] == CLASS_OLD && !old_reached[t] {
                    old_reached[t] = true;
                    next_old_frontier.push(target);
                }
            }
        }

        if young_frontier.is_empty() && next_old_frontier.is_empty() {
            break;
        }

        for &v in &young_frontier {
            young_reached[v as usize] = true;
        }
        young_total += young_frontier.len();
        old_total += next_old_frontier.len();
        phases.push(OnionSkinPhase {
            phase: phases.len(),
            new_young: young_frontier.len(),
            new_old: next_old_frontier.len(),
            young_total,
            old_total,
        });
        for &t in &old_frontier {
            in_old_frontier[t as usize] = false;
        }
        old_frontier = next_old_frontier;
        for &t in &old_frontier {
            in_old_frontier[t as usize] = true;
        }
    }

    OnionSkinTrace {
        source,
        young_population,
        old_population,
        very_old_population,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StreamingConfig, StreamingModel};

    fn warm_sdg(n: usize, d: usize, seed: u64) -> StreamingModel {
        let mut m = StreamingModel::new(StreamingConfig::new(n, d).seed(seed)).unwrap();
        m.warm_up();
        m
    }

    #[test]
    fn age_classification_matches_paper_bands() {
        let n = 1000;
        assert_eq!(classify_age(0, n), AgeClass::Young);
        assert_eq!(classify_age(499, n), AgeClass::Young);
        assert_eq!(classify_age(500, n), AgeClass::Old);
        assert_eq!(classify_age(993, n), AgeClass::Old);
        assert_eq!(classify_age(998, n), AgeClass::VeryOld);
        assert_eq!(classify_age(1000, n), AgeClass::VeryOld);
    }

    #[test]
    fn populations_split_roughly_in_half() {
        let model = warm_sdg(400, 4, 1);
        let trace = run_onion_skin(&model);
        let total = trace.young_population + trace.old_population + trace.very_old_population;
        assert_eq!(total, 400);
        assert!(trace.young_population >= 190 && trace.young_population <= 210);
        assert!(trace.very_old_population <= 10);
    }

    #[test]
    fn source_is_the_newest_node_and_phase_zero_counts_its_old_targets() {
        let model = warm_sdg(300, 6, 2);
        let trace = run_onion_skin(&model);
        assert_eq!(trace.source, model.newest_node().unwrap());
        let phase0 = &trace.phases[0];
        assert_eq!(phase0.phase, 0);
        assert_eq!(phase0.new_young, 0);
        assert!(phase0.new_old <= 6, "at most d old targets in phase 0");
        assert_eq!(phase0.young_total, 1);
    }

    #[test]
    fn reached_sets_only_grow_and_stay_within_population() {
        let model = warm_sdg(500, 8, 3);
        let trace = run_onion_skin(&model);
        for w in trace.phases.windows(2) {
            assert!(w[1].young_total >= w[0].young_total);
            assert!(w[1].old_total >= w[0].old_total);
            assert_eq!(w[1].phase, w[0].phase + 1);
        }
        assert!(trace.reached() <= 500);
        assert!(trace.phase_count() >= 1);
    }

    #[test]
    fn larger_d_reaches_more_nodes() {
        // Claim 3.10's growth factor scales with d: with d = 16 the construction
        // should reach far more nodes than with d = 2 on the same network size.
        let small = run_onion_skin(&warm_sdg(600, 2, 4));
        let large = run_onion_skin(&warm_sdg(600, 16, 4));
        assert!(
            large.reached() > small.reached(),
            "d = 16 reached {} nodes, d = 2 reached {}",
            large.reached(),
            small.reached()
        );
        assert!(
            large.reached() > 100,
            "with d = 16 the onion-skin reaches a large set, got {}",
            large.reached()
        );
    }

    #[test]
    fn growth_factors_are_positive_while_growing() {
        let trace = run_onion_skin(&warm_sdg(800, 12, 5));
        for f in trace.old_growth_factors() {
            assert!(f >= 0.0);
        }
    }
}
