//! Configuration of the four dynamic network models.

use serde::{Deserialize, Serialize};

use crate::driver::VictimPolicy;
use crate::{ModelError, Result};

/// Smallest supported expected network size.
pub const MIN_NETWORK_SIZE: usize = 2;

/// How the topology reacts to a neighbour's death.
///
/// * [`EdgePolicy::Static`] — edges are created only when a node joins
///   (Definitions 3.4 and 4.9); a request whose target dies stays dangling.
///   Combined with the streaming / Poisson churn this gives the SDG / PDG
///   models.
/// * [`EdgePolicy::Regenerate`] — a node immediately replaces any request whose
///   target died by a new uniformly random one (Definitions 3.13 and 4.14),
///   keeping its out-degree at `d` forever. This gives the SDGR / PDGR models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EdgePolicy {
    /// No edge regeneration (SDG / PDG).
    #[default]
    Static,
    /// Edge regeneration on neighbour death (SDGR / PDGR).
    Regenerate,
}

impl EdgePolicy {
    /// Returns `true` for [`EdgePolicy::Regenerate`].
    #[must_use]
    pub fn regenerates(self) -> bool {
        matches!(self, EdgePolicy::Regenerate)
    }
}

impl std::fmt::Display for EdgePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgePolicy::Static => f.write_str("static"),
            EdgePolicy::Regenerate => f.write_str("regenerate"),
        }
    }
}

/// Configuration of a [`crate::StreamingModel`] (SDG / SDGR, Definitions 3.4 and
/// 3.13).
///
/// Built with a consuming builder style:
///
/// ```
/// use churn_core::{EdgePolicy, StreamingConfig};
///
/// let config = StreamingConfig::new(1_000, 8)
///     .edge_policy(EdgePolicy::Regenerate)
///     .seed(7)
///     .record_events(true);
/// assert_eq!(config.n, 1_000);
/// assert!(config.edge_policy.regenerates());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Lifetime of every node in rounds; after warm-up this is also the exact
    /// network size.
    pub n: usize,
    /// Number of connection requests every node opens when it joins.
    pub d: usize,
    /// Topology reaction to neighbour deaths.
    pub edge_policy: EdgePolicy,
    /// RNG seed; two models built from identical configurations evolve
    /// identically.
    pub seed: u64,
    /// Whether to keep a log of [`crate::ModelEvent`]s (costs memory on long runs).
    pub record_events: bool,
}

impl StreamingConfig {
    /// Creates a configuration with the given network size and degree, static
    /// edge policy, seed 0 and event recording disabled.
    #[must_use]
    pub fn new(n: usize, d: usize) -> Self {
        StreamingConfig {
            n,
            d,
            edge_policy: EdgePolicy::Static,
            seed: 0,
            record_events: false,
        }
    }

    /// Sets the edge policy.
    #[must_use]
    pub fn edge_policy(mut self, policy: EdgePolicy) -> Self {
        self.edge_policy = policy;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables event recording.
    #[must_use]
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NetworkTooSmall`] if `n < 2` and
    /// [`ModelError::InvalidDegree`] if `d == 0`.
    pub fn validate(&self) -> Result<()> {
        if self.n < MIN_NETWORK_SIZE {
            return Err(ModelError::NetworkTooSmall {
                requested: self.n,
                minimum: MIN_NETWORK_SIZE,
            });
        }
        if self.d == 0 {
            return Err(ModelError::InvalidDegree { requested: self.d });
        }
        Ok(())
    }
}

/// Configuration of a [`crate::PoissonModel`] (PDG / PDGR, Definitions 4.9 and
/// 4.14).
///
/// The paper normalises λ = 1 and calls `n = 1/µ` the expected network size;
/// [`PoissonConfig::with_expected_size`] builds exactly that parameterisation,
/// while [`PoissonConfig::with_rates`] accepts arbitrary (λ, µ).
///
/// ```
/// use churn_core::PoissonConfig;
///
/// let config = PoissonConfig::with_expected_size(1_000, 8).seed(3);
/// assert_eq!(config.lambda, 1.0);
/// assert!((config.mu - 0.001).abs() < 1e-12);
/// assert_eq!(config.expected_size(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonConfig {
    /// Node arrival rate λ.
    pub lambda: f64,
    /// Per-node death rate µ (mean lifetime `1/µ`).
    pub mu: f64,
    /// Number of connection requests every node opens when it joins.
    pub d: usize,
    /// Topology reaction to neighbour deaths.
    pub edge_policy: EdgePolicy,
    /// RNG seed.
    pub seed: u64,
    /// Whether to keep a log of [`crate::ModelEvent`]s.
    pub record_events: bool,
    /// How death events pick their victim: the paper's uniform churn, or an
    /// adversarial (oldest-first / highest-degree) selection.
    pub victim_policy: VictimPolicy,
}

impl PoissonConfig {
    /// The paper's normalisation: λ = 1, µ = 1/n.
    #[must_use]
    pub fn with_expected_size(n: usize, d: usize) -> Self {
        PoissonConfig {
            lambda: 1.0,
            mu: 1.0 / n as f64,
            d,
            edge_policy: EdgePolicy::Static,
            seed: 0,
            record_events: false,
            victim_policy: VictimPolicy::Uniform,
        }
    }

    /// Arbitrary arrival and death rates.
    #[must_use]
    pub fn with_rates(lambda: f64, mu: f64, d: usize) -> Self {
        PoissonConfig {
            lambda,
            mu,
            d,
            edge_policy: EdgePolicy::Static,
            seed: 0,
            record_events: false,
            victim_policy: VictimPolicy::Uniform,
        }
    }

    /// Sets the death-victim selection policy.
    #[must_use]
    pub fn victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }

    /// Sets the edge policy.
    #[must_use]
    pub fn edge_policy(mut self, policy: EdgePolicy) -> Self {
        self.edge_policy = policy;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables event recording.
    #[must_use]
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Expected stationary network size `λ / µ`, rounded to the nearest integer.
    #[must_use]
    pub fn expected_size(&self) -> usize {
        (self.lambda / self.mu).round() as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if either rate is non-positive or not
    /// finite, [`ModelError::NetworkTooSmall`] if `λ/µ < 2`, and
    /// [`ModelError::InvalidDegree`] if `d == 0`.
    pub fn validate(&self) -> Result<()> {
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(ModelError::InvalidRate {
                parameter: "lambda",
                value: self.lambda,
            });
        }
        if !(self.mu.is_finite() && self.mu > 0.0) {
            return Err(ModelError::InvalidRate {
                parameter: "mu",
                value: self.mu,
            });
        }
        if self.expected_size() < MIN_NETWORK_SIZE {
            return Err(ModelError::NetworkTooSmall {
                requested: self.expected_size(),
                minimum: MIN_NETWORK_SIZE,
            });
        }
        if self.d == 0 {
            return Err(ModelError::InvalidDegree { requested: self.d });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_policy_default_is_static() {
        assert_eq!(EdgePolicy::default(), EdgePolicy::Static);
        assert!(!EdgePolicy::Static.regenerates());
        assert!(EdgePolicy::Regenerate.regenerates());
        assert_eq!(EdgePolicy::Static.to_string(), "static");
        assert_eq!(EdgePolicy::Regenerate.to_string(), "regenerate");
    }

    #[test]
    fn streaming_config_builder_sets_fields() {
        let c = StreamingConfig::new(100, 4)
            .edge_policy(EdgePolicy::Regenerate)
            .seed(9)
            .record_events(true);
        assert_eq!(c.n, 100);
        assert_eq!(c.d, 4);
        assert_eq!(c.edge_policy, EdgePolicy::Regenerate);
        assert_eq!(c.seed, 9);
        assert!(c.record_events);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn streaming_config_validation_rejects_bad_values() {
        assert!(matches!(
            StreamingConfig::new(1, 4).validate(),
            Err(ModelError::NetworkTooSmall { .. })
        ));
        assert!(matches!(
            StreamingConfig::new(100, 0).validate(),
            Err(ModelError::InvalidDegree { .. })
        ));
    }

    #[test]
    fn poisson_config_expected_size_matches_lambda_over_mu() {
        let c = PoissonConfig::with_expected_size(500, 6);
        assert_eq!(c.expected_size(), 500);
        assert!(c.validate().is_ok());
        let c = PoissonConfig::with_rates(2.0, 0.01, 6);
        assert_eq!(c.expected_size(), 200);
    }

    #[test]
    fn poisson_config_validation_rejects_bad_values() {
        assert!(matches!(
            PoissonConfig::with_rates(0.0, 0.1, 3).validate(),
            Err(ModelError::InvalidRate {
                parameter: "lambda",
                ..
            })
        ));
        assert!(matches!(
            PoissonConfig::with_rates(1.0, f64::NAN, 3).validate(),
            Err(ModelError::InvalidRate {
                parameter: "mu",
                ..
            })
        ));
        assert!(matches!(
            PoissonConfig::with_rates(1.0, 1.0, 3).validate(),
            Err(ModelError::NetworkTooSmall { .. })
        ));
        assert!(matches!(
            PoissonConfig::with_expected_size(100, 0).validate(),
            Err(ModelError::InvalidDegree { .. })
        ));
    }
}
