//! The Poisson dynamic graph models PDG and PDGR (Definitions 4.1, 4.9, 4.14).

use std::collections::VecDeque;

use churn_graph::hashing::IdHashMap;
use churn_graph::{DynamicGraph, EdgeSlot, NodeId, NodeIdAllocator, RemovedNode};
use churn_stochastic::process::{BirthDeathChain, Jump, JumpKind};
use churn_stochastic::rng::{seeded_rng, SimRng};

use crate::driver::{self, ChurnHost, JumpClock, PoissonChurnHost, VictimPolicy};
use crate::model::DynamicNetwork;
use crate::{ChurnSummary, EdgePolicy, ModelEvent, PoissonConfig, Result};

/// The kind of churn event a Poisson jump realised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoissonEvent {
    /// A node joined at the given time.
    Arrival {
        /// The new node.
        id: NodeId,
        /// Continuous time of the arrival.
        time: f64,
    },
    /// A node died at the given time.
    Departure {
        /// The departed node.
        id: NodeId,
        /// Continuous time of the departure.
        time: f64,
    },
}

/// The Poisson dynamic graph: PDG without edge regeneration, PDGR with it.
///
/// Node churn follows Definition 4.1: arrivals form a Poisson process with rate
/// λ and every node's lifetime is exponential with rate µ, so the expected
/// stationary population is `n = λ/µ`. The simulation advances along the *jump
/// chain* of Definition 4.5 (Lemma 4.6): with `N` alive nodes the next event
/// arrives after an `Exp(Nµ + λ)` waiting time and is a death of a uniformly
/// random alive node with probability `Nµ/(Nµ + λ)`, an arrival otherwise.
///
/// Topology follows Definition 4.9 (or 4.14 under [`EdgePolicy::Regenerate`]):
/// the joining node opens `d` requests towards uniformly random alive nodes,
/// edges vanish with either endpoint, and regeneration re-points dangling
/// requests at fresh uniform targets immediately.
///
/// # Example
///
/// ```
/// use churn_core::{DynamicNetwork, PoissonConfig, PoissonModel};
///
/// # fn main() -> Result<(), churn_core::ModelError> {
/// let mut model = PoissonModel::new(PoissonConfig::with_expected_size(300, 6).seed(5))?;
/// model.warm_up();
/// let size = model.alive_count() as f64;
/// assert!(size > 0.7 * 300.0 && size < 1.3 * 300.0, "population concentrates near n");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PoissonModel {
    config: PoissonConfig,
    graph: DynamicGraph,
    rng: SimRng,
    chain: BirthDeathChain,
    time: f64,
    jumps: u64,
    birth_time: IdHashMap<NodeId, f64>,
    alloc: NodeIdAllocator,
    newest: Option<NodeId>,
    events: Vec<ModelEvent>,
    /// Reused buffers: the removal report and the batch of sampled targets.
    /// Steady-state jumps allocate nothing.
    removal_scratch: RemovedNode,
    sample_scratch: Vec<u32>,
    /// Birth-order queue (front = oldest), maintained only under
    /// [`VictimPolicy::OldestFirst`] and compacted lazily by the shared
    /// [`driver::oldest_alive_victim`] selector.
    order: VecDeque<(NodeId, u32)>,
}

impl PoissonModel {
    /// Builds an empty (time 0) Poisson model.
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`PoissonConfig::validate`].
    pub fn new(config: PoissonConfig) -> Result<Self> {
        config.validate()?;
        let rng = seeded_rng(config.seed);
        let chain = BirthDeathChain::new(config.lambda, config.mu);
        let capacity = config.expected_size() + 16;
        let mut graph = DynamicGraph::with_capacity(capacity);
        if config.victim_policy == VictimPolicy::HighestDegree {
            // Degree-targeted deaths read the hub through the bucketed index
            // (amortised O(1) per incident edge change) instead of scanning
            // all members per death.
            graph.set_degree_index(true);
        }
        Ok(PoissonModel {
            graph,
            rng,
            chain,
            time: 0.0,
            jumps: 0,
            birth_time: IdHashMap::with_capacity_and_hasher(capacity, Default::default()),
            alloc: NodeIdAllocator::new(),
            newest: None,
            events: Vec::new(),
            removal_scratch: RemovedNode::default(),
            sample_scratch: Vec::new(),
            order: VecDeque::new(),
            config,
        })
    }

    /// The configuration the model was built from.
    #[must_use]
    pub fn config(&self) -> &PoissonConfig {
        &self.config
    }

    /// Which of the paper's models this instance realises (PDG or PDGR).
    #[must_use]
    pub fn model_kind(&self) -> crate::ModelKind {
        if self.config.edge_policy.regenerates() {
            crate::ModelKind::Pdgr
        } else {
            crate::ModelKind::Pdg
        }
    }

    /// Number of jump-chain rounds `r` processed so far (Definition 4.5).
    #[must_use]
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    /// Processes exactly one jump-chain event and returns it.
    pub fn next_jump(&mut self) -> PoissonEvent {
        let jump = self.chain.next_jump(self.graph.len() as u64, &mut self.rng);
        self.time += jump.waiting_time;
        self.jumps += 1;
        match jump.kind {
            JumpKind::Birth => {
                let (id, _) = self.spawn_node_at(self.time);
                PoissonEvent::Arrival {
                    id,
                    time: self.time,
                }
            }
            JumpKind::Death => {
                let (victim, victim_idx) = self.sample_victim_node();
                self.kill_node_at(victim, victim_idx, self.time);
                PoissonEvent::Departure {
                    id: victim,
                    time: self.time,
                }
            }
        }
    }

    /// Processes `rounds` jump-chain events, returning the merged churn summary.
    pub fn advance_jumps(&mut self, rounds: u64) -> ChurnSummary {
        let mut summary = ChurnSummary::new();
        for _ in 0..rounds {
            match self.next_jump() {
                PoissonEvent::Arrival { id, .. } => summary.record_birth(id),
                PoissonEvent::Departure { id, .. } => summary.record_death(id),
            }
        }
        summary
    }

    /// Advances continuous time up to `target`, processing every churn event in
    /// between. Relies on the memorylessness of the exponential waiting times:
    /// a sampled waiting time that would overshoot `target` is discarded and the
    /// clock simply set to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is NaN or lies in the past.
    pub fn advance_until(&mut self, target: f64) -> ChurnSummary {
        assert!(!target.is_nan(), "target time must not be NaN");
        assert!(
            target >= self.time,
            "cannot advance to {target} before the current time {}",
            self.time
        );
        // The jump-chain mechanics (overshoot handling included) live in the
        // shared driver; this model contributes its spawn/kill hooks. The
        // clock is detached for the call because the hooks mutably borrow
        // `self`.
        let mut summary = ChurnSummary::new();
        let chain = self.chain;
        let mut clock = JumpClock {
            time: self.time,
            jumps: self.jumps,
        };
        driver::poisson_advance_until(self, &chain, &mut clock, target, &mut summary);
        self.time = clock.time;
        self.jumps = clock.jumps;
        summary
    }

    fn sample_victim_node(&mut self) -> (NodeId, u32) {
        match self.config.victim_policy {
            VictimPolicy::Uniform => {
                let victim_idx = self
                    .graph
                    .sample_member(&mut self.rng)
                    .expect("a death event implies at least one alive node");
                let victim = self
                    .graph
                    .id_at(victim_idx)
                    .expect("sampled member is alive");
                (victim, victim_idx)
            }
            VictimPolicy::OldestFirst => driver::oldest_alive_victim(&self.graph, &mut self.order),
            VictimPolicy::HighestDegree => driver::highest_degree_victim_indexed(&mut self.graph),
        }
    }

    fn spawn_node_at(&mut self, time: f64) -> (NodeId, u32) {
        let id = self.alloc.next_id();
        let d = self.config.d;
        let idx = self
            .graph
            .add_node_indexed(id, d)
            .expect("allocator never reuses identifiers");
        if self.config.record_events {
            self.events.push(ModelEvent::NodeJoined { id, time });
        }
        // d uniform requests among the pre-existing nodes: the newborn is
        // already registered in the member list, so exclude it by index.
        // Targets are drawn in a batch before any record is touched so the
        // per-target cache misses overlap.
        self.sample_scratch.clear();
        self.graph
            .sample_members_excluding_into(&mut self.rng, idx, d, &mut self.sample_scratch);
        for slot in 0..self.sample_scratch.len() {
            let target_idx = self.sample_scratch[slot];
            self.graph
                .set_out_slot_at(idx, slot, target_idx)
                .expect("valid request");
            if self.config.record_events {
                let target = self
                    .graph
                    .id_at(target_idx)
                    .expect("sampled member is alive");
                self.events.push(ModelEvent::EdgeCreated {
                    slot: EdgeSlot { owner: id, slot },
                    target,
                    time,
                });
            }
        }
        self.birth_time.insert(id, time);
        self.newest = Some(id);
        if self.config.victim_policy == VictimPolicy::OldestFirst {
            self.order.push_back((id, idx));
        }
        (id, idx)
    }

    fn kill_node_at(&mut self, victim: NodeId, victim_idx: u32, time: f64) {
        self.birth_time.remove(&victim);
        if self.newest == Some(victim) {
            self.newest = None;
        }
        let mut removed = std::mem::take(&mut self.removal_scratch);
        self.graph
            .remove_node_into(victim_idx, &mut removed)
            .expect("sampled victim is alive");
        if self.config.record_events {
            self.events.push(ModelEvent::NodeDied { id: victim, time });
            for (slot, &target) in removed.out_targets.iter().enumerate() {
                self.events.push(ModelEvent::EdgeDropped {
                    slot: EdgeSlot {
                        owner: victim,
                        slot,
                    },
                    target,
                    time,
                });
            }
            for &slot in &removed.dangling_slots {
                self.events.push(ModelEvent::EdgeDropped {
                    slot,
                    target: victim,
                    time,
                });
            }
        }
        if self.config.edge_policy.regenerates() {
            // dangling_dense is aligned with dangling_slots and sorted by
            // (owner id, slot), so the regeneration draw order is
            // deterministic. Replacement targets are drawn in a batch first,
            // letting the per-owner record touches overlap.
            self.sample_scratch.clear();
            for &(owner_idx, _) in &removed.dangling_dense {
                match self.graph.sample_member_excluding(&mut self.rng, owner_idx) {
                    Some(target_idx) => self.sample_scratch.push(target_idx),
                    None => self.sample_scratch.push(u32::MAX),
                }
            }
            for (pair, &target_idx) in removed
                .dangling_slots
                .iter()
                .zip(&removed.dangling_dense)
                .zip(&self.sample_scratch)
            {
                let (slot, &(owner_idx, slot_pos)) = pair;
                if target_idx == u32::MAX {
                    continue;
                }
                self.graph
                    .set_out_slot_at(owner_idx, slot_pos, target_idx)
                    .expect("owner alive, slot in range, target distinct");
                if self.config.record_events {
                    let target = self
                        .graph
                        .id_at(target_idx)
                        .expect("sampled member is alive");
                    self.events.push(ModelEvent::EdgeRegenerated {
                        slot: *slot,
                        target,
                        time,
                    });
                }
            }
        }
        self.removal_scratch = removed;
    }
}

/// Driver hooks (see [`crate::driver`]): the jump-chain loop lives in the
/// shared driver; this model contributes spawning, killing, victim sampling
/// and the jump draw (all randomness stays on the model's own RNG, in the
/// pre-extraction order).
impl ChurnHost for PoissonModel {
    fn spawn(&mut self, time: f64) -> (NodeId, u32) {
        self.spawn_node_at(time)
    }

    fn kill(&mut self, victim: NodeId, victim_idx: u32, time: f64) {
        self.kill_node_at(victim, victim_idx, time);
    }
}

impl PoissonChurnHost for PoissonModel {
    fn draw_jump(&mut self, chain: &BirthDeathChain) -> Jump {
        chain.next_jump(self.graph.len() as u64, &mut self.rng)
    }

    fn sample_victim(&mut self) -> (NodeId, u32) {
        self.sample_victim_node()
    }
}

impl DynamicNetwork for PoissonModel {
    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    fn degree_parameter(&self) -> usize {
        self.config.d
    }

    fn expected_size(&self) -> usize {
        self.config.expected_size()
    }

    fn edge_policy(&self) -> EdgePolicy {
        self.config.edge_policy
    }

    fn model_kind(&self) -> crate::ModelKind {
        PoissonModel::model_kind(self)
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn churn_steps(&self) -> u64 {
        self.jumps
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        self.birth_time.get(&id).copied()
    }

    fn newest_node(&self) -> Option<NodeId> {
        self.newest.filter(|id| self.graph.contains(*id))
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        let target = self.time + 1.0;
        self.advance_until(target)
    }

    fn warm_up(&mut self) {
        let target = 3.0 * self.expected_size() as f64;
        if self.time < target {
            // Discard-summary path: the warm-up window spans ~5n churn
            // events, and the net-effect summary bookkeeping is quadratic in
            // window length (each death scans the window's births) — minutes
            // at n = 10^6, for a report nobody reads. Same RNG stream, same
            // trajectory, same event log.
            let chain = self.chain;
            let mut clock = JumpClock {
                time: self.time,
                jumps: self.jumps,
            };
            driver::poisson_advance_until_discarding(self, &chain, &mut clock, target);
            self.time = clock.time;
            self.jumps = clock.jumps;
        }
    }

    fn is_warm(&self) -> bool {
        self.time >= 3.0 * self.expected_size() as f64
    }

    fn drain_events(&mut self) -> Vec<ModelEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_graph::Snapshot;
    use churn_stochastic::OnlineStats;
    use std::collections::HashMap;

    fn model(n: usize, d: usize, policy: EdgePolicy, seed: u64) -> PoissonModel {
        PoissonModel::new(
            PoissonConfig::with_expected_size(n, d)
                .edge_policy(policy)
                .seed(seed),
        )
        .expect("valid configuration")
    }

    #[test]
    fn construction_rejects_invalid_configuration() {
        assert!(PoissonModel::new(PoissonConfig::with_rates(-1.0, 0.1, 3)).is_err());
        assert!(PoissonModel::new(PoissonConfig::with_expected_size(100, 0)).is_err());
    }

    #[test]
    fn population_concentrates_around_expected_size() {
        // Lemma 4.4: for t >= 3n the population is within [0.9 n, 1.1 n] w.h.p.
        let mut m = model(500, 4, EdgePolicy::Static, 0);
        m.warm_up();
        assert!(m.is_warm());
        // Sample well past the initial fill-up transient (population approaches n
        // as 1 - e^{-t/n}, so by t = 6n the residual bias is below 0.3%).
        m.advance_until(6.0 * 500.0);
        let mut stats = OnlineStats::new();
        let mut in_band = 0usize;
        let samples = 200;
        for _ in 0..samples {
            m.advance_time_unit();
            let size = m.alive_count() as f64;
            stats.push(size);
            if (450.0..=550.0).contains(&size) {
                in_band += 1;
            }
        }
        assert!(
            (stats.mean() - 500.0).abs() < 50.0,
            "mean population {} should be near 500",
            stats.mean()
        );
        assert!(
            in_band as f64 / samples as f64 > 0.8,
            "population should stay in [0.9n, 1.1n] most of the time"
        );
    }

    #[test]
    fn time_advances_monotonically_and_jump_count_increases() {
        let mut m = model(100, 3, EdgePolicy::Static, 1);
        let mut last_time = 0.0;
        for _ in 0..500 {
            let event = m.next_jump();
            let t = match event {
                PoissonEvent::Arrival { time, .. } | PoissonEvent::Departure { time, .. } => time,
            };
            assert!(t >= last_time);
            last_time = t;
        }
        assert_eq!(m.jump_count(), 500);
        assert!((m.time() - last_time).abs() < 1e-12);
    }

    #[test]
    fn advance_until_stops_exactly_at_target() {
        let mut m = model(100, 3, EdgePolicy::Static, 2);
        m.advance_until(25.0);
        assert!((m.time() - 25.0).abs() < 1e-12);
        m.advance_until(25.0);
        assert!(
            (m.time() - 25.0).abs() < 1e-12,
            "advancing to now is a no-op"
        );
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn advance_until_rejects_past_targets() {
        let mut m = model(100, 3, EdgePolicy::Static, 3);
        m.advance_until(10.0);
        m.advance_until(5.0);
    }

    #[test]
    fn lifetimes_are_exponential_with_mean_n() {
        let n = 200usize;
        let mut m = PoissonModel::new(
            PoissonConfig::with_expected_size(n, 2)
                .seed(4)
                .record_events(true),
        )
        .unwrap();
        m.advance_until(8.0 * n as f64);
        let events = m.drain_events();
        let mut births: HashMap<NodeId, f64> = HashMap::new();
        let mut lifetimes = OnlineStats::new();
        for e in events {
            match e {
                ModelEvent::NodeJoined { id, time } => {
                    births.insert(id, time);
                }
                ModelEvent::NodeDied { id, time } => {
                    // Only count nodes born early enough that right-censoring by the
                    // end of the observation window is negligible (survival past
                    // 6n has probability e^{-6}).
                    if let Some(&b) = births.get(&id) {
                        if b < 2.0 * n as f64 {
                            lifetimes.push(time - b);
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(lifetimes.count() > 250);
        assert!(
            (lifetimes.mean() - n as f64).abs() < 0.15 * n as f64,
            "mean lifetime {} should be close to n = {n}",
            lifetimes.mean()
        );
    }

    #[test]
    fn newborn_opens_d_requests() {
        let mut m = model(300, 7, EdgePolicy::Static, 5);
        m.warm_up();
        // Find the next arrival.
        let id = loop {
            if let PoissonEvent::Arrival { id, .. } = m.next_jump() {
                break id;
            }
        };
        assert_eq!(m.graph().out_degree(id), Some(7));
        assert_eq!(m.newest_node(), Some(id));
    }

    #[test]
    fn with_regeneration_out_degree_stays_d() {
        let mut m = model(150, 5, EdgePolicy::Regenerate, 6);
        m.warm_up();
        for _ in 0..300 {
            m.next_jump();
        }
        for id in m.alive_ids() {
            assert_eq!(
                m.graph().out_degree(id),
                Some(5),
                "PDGR keeps out-degree exactly d"
            );
        }
        m.graph().assert_invariants();
    }

    #[test]
    fn without_regeneration_old_nodes_lose_out_edges() {
        let mut m = model(150, 5, EdgePolicy::Static, 7);
        m.warm_up();
        for _ in 0..2_000 {
            m.next_jump();
        }
        let any_decayed = m
            .alive_ids()
            .iter()
            .any(|&id| m.graph().out_degree(id).unwrap() < 5);
        assert!(
            any_decayed,
            "in PDG some nodes must have lost out-edges to dead neighbours"
        );
        m.graph().assert_invariants();
    }

    #[test]
    fn same_seed_gives_identical_evolution() {
        let mut a = model(100, 4, EdgePolicy::Regenerate, 11);
        let mut b = model(100, 4, EdgePolicy::Regenerate, 11);
        a.advance_until(250.0);
        b.advance_until(250.0);
        assert_eq!(a.alive_ids(), b.alive_ids());
        assert_eq!(Snapshot::of(a.graph()), Snapshot::of(b.graph()));
        assert_eq!(a.jump_count(), b.jump_count());
    }

    #[test]
    fn churn_summary_reflects_births_and_deaths() {
        let mut m = model(100, 3, EdgePolicy::Static, 12);
        m.warm_up();
        let before: std::collections::HashSet<NodeId> = m.alive_ids().into_iter().collect();
        let summary = m.advance_time_unit();
        let after: std::collections::HashSet<NodeId> = m.alive_ids().into_iter().collect();
        for b in &summary.births {
            assert!(after.contains(b) && !before.contains(b));
        }
        for d in &summary.deaths {
            assert!(before.contains(d) && !after.contains(d));
        }
        // Net change matches the summary.
        assert_eq!(
            after.len() as i64 - before.len() as i64,
            summary.births.len() as i64 - summary.deaths.len() as i64
        );
    }

    #[test]
    fn ages_are_positive_and_bounded_by_current_time() {
        let mut m = model(200, 3, EdgePolicy::Static, 13);
        m.advance_until(400.0);
        for id in m.alive_ids() {
            let age = m.age(id).unwrap();
            assert!(age >= 0.0 && age <= m.time());
        }
    }

    #[test]
    fn model_kind_reflects_edge_policy() {
        assert_eq!(
            model(50, 2, EdgePolicy::Static, 0).model_kind(),
            crate::ModelKind::Pdg
        );
        assert_eq!(
            model(50, 2, EdgePolicy::Regenerate, 0).model_kind(),
            crate::ModelKind::Pdgr
        );
    }

    #[test]
    fn oldest_first_victims_die_in_birth_order() {
        let mut m = PoissonModel::new(
            PoissonConfig::with_expected_size(60, 3)
                .seed(21)
                .victim_policy(crate::driver::VictimPolicy::OldestFirst),
        )
        .unwrap();
        let mut born: Vec<NodeId> = Vec::new();
        let mut died: Vec<NodeId> = Vec::new();
        for _ in 0..240 {
            let summary = m.advance_time_unit();
            born.extend(summary.births);
            died.extend(summary.deaths);
        }
        assert!(!died.is_empty(), "deaths must have happened");
        // Under oldest-first, deaths happen in exactly the birth order
        // (identifiers are allocated monotonically).
        let mut sorted = died.clone();
        sorted.sort_unstable();
        assert_eq!(died, sorted, "victims must die oldest-first");
        // And the oldest victim is always older than every survivor.
        let oldest_alive = m.alive_ids()[0];
        assert!(died.iter().all(|&v| v < oldest_alive));
        m.graph().assert_invariants();
    }

    #[test]
    fn highest_degree_victims_are_the_hubs() {
        let mut m = PoissonModel::new(
            PoissonConfig::with_expected_size(80, 4)
                .seed(22)
                .edge_policy(EdgePolicy::Static)
                .victim_policy(crate::driver::VictimPolicy::HighestDegree),
        )
        .unwrap();
        m.warm_up();
        // At every subsequent death, the victim's incident-link count must
        // have been maximal among the alive nodes at that instant. We verify
        // a weaker invariant that is cheap to check from outside: after many
        // targeted deaths the maximum incident-link count in the network is
        // no larger than with uniform churn at the same parameters.
        let max_links = |m: &PoissonModel| {
            m.graph()
                .member_indices()
                .iter()
                .map(|&idx| m.graph().incident_link_count_at(idx).unwrap())
                .max()
                .unwrap_or(0)
        };
        let mut uniform =
            PoissonModel::new(PoissonConfig::with_expected_size(80, 4).seed(22)).unwrap();
        uniform.warm_up();
        for _ in 0..200 {
            m.advance_time_unit();
            uniform.advance_time_unit();
        }
        assert!(
            max_links(&m) <= max_links(&uniform),
            "degree-targeted churn must not leave bigger hubs than uniform churn \
             (targeted {}, uniform {})",
            max_links(&m),
            max_links(&uniform)
        );
        m.graph().assert_invariants();
    }

    #[test]
    fn graph_invariants_hold_throughout_evolution() {
        for policy in [EdgePolicy::Static, EdgePolicy::Regenerate] {
            let mut m = model(60, 3, policy, 14);
            for _ in 0..500 {
                m.next_jump();
            }
            m.graph().assert_invariants();
        }
    }
}
