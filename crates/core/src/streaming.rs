//! The streaming dynamic graph models SDG and SDGR (Definitions 3.2, 3.4, 3.13).

use std::collections::VecDeque;

use churn_graph::{DynamicGraph, EdgeSlot, NodeId, NodeIdAllocator, RemovedNode};
use churn_stochastic::rng::{seeded_rng, SimRng};

use crate::driver::{self, ChurnHost};
use crate::model::DynamicNetwork;
use crate::{ChurnSummary, EdgePolicy, ModelEvent, Result, StreamingConfig};

/// The streaming dynamic graph: SDG without edge regeneration, SDGR with it.
///
/// Churn follows Definition 3.2: at every round exactly one node joins, and the
/// node that joined `n` rounds earlier leaves (so after the first `n` rounds the
/// network holds exactly `n` nodes, each alive for exactly `n` rounds). Topology
/// follows Definition 3.4 (or 3.13 with [`EdgePolicy::Regenerate`]): the joining
/// node opens `d` connection requests towards uniformly random alive nodes;
/// every edge disappears with either endpoint; with regeneration a dangling
/// request is immediately re-pointed at a fresh uniformly random alive node.
///
/// Within a round the order of operations is *death first, then birth*: the
/// node expiring at round `t` leaves (and, under regeneration, the survivors
/// repair their requests among the `n − 1` remaining nodes) before the round-`t`
/// newborn picks its `d` targets. This matches the `(1 + 1/(n−1))^k` edge
/// probability of Lemma 3.14.
///
/// # Example
///
/// ```
/// use churn_core::{DynamicNetwork, StreamingConfig, StreamingModel};
///
/// # fn main() -> Result<(), churn_core::ModelError> {
/// let mut model = StreamingModel::new(StreamingConfig::new(100, 4).seed(1))?;
/// model.warm_up();
/// assert_eq!(model.alive_count(), 100);
/// model.advance_time_unit();
/// assert_eq!(model.alive_count(), 100, "stationary size is exactly n");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingModel {
    config: StreamingConfig,
    graph: DynamicGraph,
    rng: SimRng,
    round: u64,
    /// Birth order of alive nodes as `(id, dense index)`; the front is the
    /// oldest. Dense indices stay valid for a node's whole lifetime, so the
    /// expiring node can be removed without an identifier lookup.
    order: VecDeque<(NodeId, u32)>,
    alloc: NodeIdAllocator,
    events: Vec<ModelEvent>,
    /// Reused buffers: the removal report and the batch of sampled targets.
    /// Steady-state rounds allocate nothing.
    removal_scratch: RemovedNode,
    sample_scratch: Vec<u32>,
}

impl StreamingModel {
    /// Builds an empty (round 0) streaming model.
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`StreamingConfig::validate`].
    pub fn new(config: StreamingConfig) -> Result<Self> {
        config.validate()?;
        let rng = seeded_rng(config.seed);
        Ok(StreamingModel {
            graph: DynamicGraph::with_capacity(config.n + 1),
            rng,
            round: 0,
            order: VecDeque::with_capacity(config.n + 1),
            alloc: NodeIdAllocator::new(),
            events: Vec::new(),
            removal_scratch: RemovedNode::default(),
            sample_scratch: Vec::new(),
            config,
        })
    }

    /// The configuration the model was built from.
    #[must_use]
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The current round index (0 before the first step).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Which of the paper's models this instance realises (SDG or SDGR).
    #[must_use]
    pub fn model_kind(&self) -> crate::ModelKind {
        if self.config.edge_policy.regenerates() {
            crate::ModelKind::Sdgr
        } else {
            crate::ModelKind::Sdg
        }
    }

    /// Birth round of an alive node.
    ///
    /// Identifiers are allocated monotonically, exactly one per round, so the
    /// birth round of the node with raw identifier `k` is `k + 1` — no
    /// per-node bookkeeping needed beyond the aliveness check.
    #[must_use]
    pub fn birth_round(&self, id: NodeId) -> Option<u64> {
        self.graph.contains(id).then(|| id.raw() + 1)
    }

    /// Age (in rounds) of an alive node: a node born this round has age 0, the
    /// oldest alive node has age `n − 1`.
    #[must_use]
    pub fn age_rounds(&self, id: NodeId) -> Option<u64> {
        self.birth_round(id).map(|b| self.round - b)
    }

    /// The oldest alive node (the next one to die), if any.
    #[must_use]
    pub fn oldest_node(&self) -> Option<NodeId> {
        self.order.front().map(|&(id, _)| id)
    }

    /// Executes one round: the node that joined `n` rounds ago dies (if any),
    /// then a new node joins and opens its `d` requests. The death-first
    /// order and queue mechanics live in the shared
    /// [`driver::streaming_round`] loop; this model contributes only its
    /// spawn/kill hooks.
    pub fn step_round(&mut self) -> ChurnSummary {
        self.round += 1;
        let mut summary = ChurnSummary::new();
        // Detach the queue so the driver can mutate it alongside the hooks
        // (a move of the VecDeque header, no allocation).
        let mut order = std::mem::take(&mut self.order);
        driver::streaming_round(
            self,
            &mut order,
            self.config.n,
            self.round as f64,
            &mut summary,
        );
        self.order = order;
        summary
    }

    fn spawn_node(&mut self) -> (NodeId, u32) {
        let id = self.alloc.next_id();
        let d = self.config.d;
        let idx = self
            .graph
            .add_node_indexed(id, d)
            .expect("allocator never reuses identifiers");
        let time = self.round as f64;
        if self.config.record_events {
            self.events.push(ModelEvent::NodeJoined { id, time });
        }
        // d independent uniform requests among the nodes already in the
        // network (the newborn itself is excluded by index, an O(1) slab
        // draw). Targets are drawn in a batch before any record is touched so
        // the per-target cache misses overlap.
        self.sample_scratch.clear();
        self.graph
            .sample_members_excluding_into(&mut self.rng, idx, d, &mut self.sample_scratch);
        for slot in 0..self.sample_scratch.len() {
            let target_idx = self.sample_scratch[slot];
            self.graph
                .set_out_slot_at(idx, slot, target_idx)
                .expect("slot in range, target alive, no self-loop");
            if self.config.record_events {
                let target = self
                    .graph
                    .id_at(target_idx)
                    .expect("sampled member is alive");
                self.events.push(ModelEvent::EdgeCreated {
                    slot: EdgeSlot { owner: id, slot },
                    target,
                    time,
                });
            }
        }
        debug_assert_eq!(self.birth_round(id), Some(self.round));
        (id, idx)
    }

    fn kill_node(&mut self, victim: NodeId, victim_idx: u32) {
        let time = self.round as f64;
        let mut removed = std::mem::take(&mut self.removal_scratch);
        self.graph
            .remove_node_into(victim_idx, &mut removed)
            .expect("victim from the order queue is alive");
        if self.config.record_events {
            self.events.push(ModelEvent::NodeDied { id: victim, time });
            for (slot, &target) in removed.out_targets.iter().enumerate() {
                self.events.push(ModelEvent::EdgeDropped {
                    slot: EdgeSlot {
                        owner: victim,
                        slot,
                    },
                    target,
                    time,
                });
            }
            for &slot in &removed.dangling_slots {
                self.events.push(ModelEvent::EdgeDropped {
                    slot,
                    target: victim,
                    time,
                });
            }
        }
        if self.config.edge_policy.regenerates() {
            // dangling_dense is aligned with dangling_slots and sorted by
            // (owner id, slot), so the regeneration draw order is
            // deterministic. Replacement targets are drawn in a batch first
            // (the draws do not depend on the re-pointing), letting the
            // per-owner record touches overlap.
            self.sample_scratch.clear();
            for &(owner_idx, _) in &removed.dangling_dense {
                match self.graph.sample_member_excluding(&mut self.rng, owner_idx) {
                    Some(target_idx) => self.sample_scratch.push(target_idx),
                    None => self.sample_scratch.push(u32::MAX),
                }
            }
            for (pair, &target_idx) in removed
                .dangling_slots
                .iter()
                .zip(&removed.dangling_dense)
                .zip(&self.sample_scratch)
            {
                let (slot, &(owner_idx, slot_pos)) = pair;
                if target_idx == u32::MAX {
                    continue;
                }
                self.graph
                    .set_out_slot_at(owner_idx, slot_pos, target_idx)
                    .expect("owner alive, slot in range, target distinct");
                if self.config.record_events {
                    let target = self
                        .graph
                        .id_at(target_idx)
                        .expect("sampled member is alive");
                    self.events.push(ModelEvent::EdgeRegenerated {
                        slot: *slot,
                        target,
                        time,
                    });
                }
            }
        }
        self.removal_scratch = removed;
    }
}

/// Driver hooks (see [`crate::driver`]): the streaming loop owns the birth
/// order and the death-before-birth sequencing; the model only spawns and
/// kills. The `time` argument is redundant for streaming models — events are
/// stamped with the round counter.
impl ChurnHost for StreamingModel {
    fn spawn(&mut self, _time: f64) -> (NodeId, u32) {
        self.spawn_node()
    }

    fn kill(&mut self, victim: NodeId, victim_idx: u32, _time: f64) {
        self.kill_node(victim, victim_idx);
    }
}

impl DynamicNetwork for StreamingModel {
    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    fn degree_parameter(&self) -> usize {
        self.config.d
    }

    fn expected_size(&self) -> usize {
        self.config.n
    }

    fn edge_policy(&self) -> EdgePolicy {
        self.config.edge_policy
    }

    fn model_kind(&self) -> crate::ModelKind {
        StreamingModel::model_kind(self)
    }

    fn time(&self) -> f64 {
        self.round as f64
    }

    fn churn_steps(&self) -> u64 {
        self.round
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        self.birth_round(id).map(|r| r as f64)
    }

    fn newest_node(&self) -> Option<NodeId> {
        self.order.back().map(|&(id, _)| id)
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        self.step_round()
    }

    fn warm_up(&mut self) {
        while !self.is_warm() {
            self.step_round();
        }
    }

    fn is_warm(&self) -> bool {
        // Round n is when the network first reaches full size, but deaths only
        // begin at round n + 1, so the edge structure at round n is atypical
        // (every node still holds all d of its requests). The process is exactly
        // stationary once every alive node was born after deaths started, i.e.
        // from round 2n onwards — that is the regime the paper's "for every
        // fixed t > n" statements describe.
        self.round >= 2 * self.config.n as u64
    }

    fn drain_events(&mut self) -> Vec<ModelEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_graph::Snapshot;
    use churn_stochastic::OnlineStats;
    use std::collections::HashMap;

    fn model(n: usize, d: usize, policy: EdgePolicy, seed: u64) -> StreamingModel {
        StreamingModel::new(
            StreamingConfig::new(n, d)
                .edge_policy(policy)
                .seed(seed)
                .record_events(true),
        )
        .expect("valid configuration")
    }

    #[test]
    fn construction_rejects_invalid_configuration() {
        assert!(StreamingModel::new(StreamingConfig::new(1, 3)).is_err());
        assert!(StreamingModel::new(StreamingConfig::new(10, 0)).is_err());
    }

    #[test]
    fn population_grows_then_stays_exactly_n() {
        let mut m = model(50, 3, EdgePolicy::Static, 0);
        for round in 1..=50u64 {
            m.step_round();
            assert_eq!(m.alive_count() as u64, round);
        }
        for _ in 0..120 {
            m.step_round();
            assert_eq!(m.alive_count(), 50, "stationary size is exactly n");
        }
        assert!(m.is_warm(), "round 170 is past the 2n warm-up point");
    }

    #[test]
    fn every_node_lives_exactly_n_rounds() {
        let n = 30;
        let mut m = model(n, 2, EdgePolicy::Static, 1);
        let mut birth: HashMap<NodeId, u64> = HashMap::new();
        let mut death: HashMap<NodeId, u64> = HashMap::new();
        for _ in 0..200 {
            let summary = m.step_round();
            for b in summary.births {
                birth.insert(b, m.round());
            }
            for dd in summary.deaths {
                death.insert(dd, m.round());
            }
        }
        assert!(!death.is_empty());
        for (id, died_at) in death {
            let born_at = birth[&id];
            assert_eq!(
                died_at - born_at,
                n as u64,
                "node {id} should die exactly n rounds after joining"
            );
        }
    }

    #[test]
    fn warm_up_is_idempotent_and_reaches_round_two_n() {
        let mut m = model(40, 3, EdgePolicy::Static, 2);
        m.warm_up();
        assert_eq!(m.round(), 80);
        m.warm_up();
        assert_eq!(m.round(), 80, "warming an already warm model is a no-op");
    }

    #[test]
    fn ages_span_zero_to_n_minus_one_after_warm_up() {
        let mut m = model(25, 3, EdgePolicy::Static, 3);
        m.warm_up();
        let mut ages: Vec<u64> = m
            .alive_ids()
            .into_iter()
            .map(|id| m.age_rounds(id).unwrap())
            .collect();
        ages.sort_unstable();
        assert_eq!(ages, (0..25u64).collect::<Vec<_>>());
        assert_eq!(m.age_rounds(m.newest_node().unwrap()), Some(0));
        assert_eq!(m.age_rounds(m.oldest_node().unwrap()), Some(24));
    }

    #[test]
    fn newborn_opens_d_requests_towards_alive_nodes() {
        let mut m = model(60, 5, EdgePolicy::Static, 4);
        m.warm_up();
        let summary = m.step_round();
        let newborn = summary.births[0];
        assert_eq!(m.graph().out_degree(newborn), Some(5));
        for target in m.graph().out_slots(newborn).unwrap().iter().flatten() {
            assert!(m.contains(*target));
            assert_ne!(*target, newborn);
        }
    }

    #[test]
    fn without_regeneration_out_degree_decays_with_age() {
        // Old nodes lose out-edges as their targets die and are never repaired:
        // the mechanism behind the isolated nodes of Lemma 3.5.
        let mut m = model(80, 4, EdgePolicy::Static, 5);
        m.warm_up();
        for _ in 0..200 {
            m.step_round();
        }
        let oldest = m.oldest_node().unwrap();
        let newest = m.newest_node().unwrap();
        // The newest node always has full out-degree, the oldest rarely does; we
        // assert the weaker deterministic fact that the oldest cannot exceed d
        // and the structural invariants hold.
        assert!(m.graph().out_degree(oldest).unwrap() <= 4);
        assert_eq!(m.graph().out_degree(newest), Some(4));
        m.graph().assert_invariants();
    }

    #[test]
    fn with_regeneration_every_node_keeps_out_degree_d() {
        let mut m = model(80, 4, EdgePolicy::Regenerate, 6);
        m.warm_up();
        for _ in 0..200 {
            m.step_round();
            // Every alive node keeps exactly d out-going requests at all times
            // (Definition 3.13), except in the degenerate first rounds.
            for id in m.alive_ids() {
                assert_eq!(m.graph().out_degree(id), Some(4));
            }
        }
        assert_eq!(m.graph().filled_slot_count(), 80 * 4);
        m.graph().assert_invariants();
    }

    #[test]
    fn expected_degree_is_d_without_regeneration() {
        // Lemma 6.1: the expected degree of a node in a warm SDG snapshot is d.
        let mut m = model(400, 6, EdgePolicy::Static, 7);
        m.warm_up();
        let mut stats = OnlineStats::new();
        for _ in 0..20 {
            for _ in 0..20 {
                m.step_round();
            }
            let snap = Snapshot::of(m.graph());
            stats.push(churn_graph::metrics::average_degree(&snap));
        }
        assert!(
            (stats.mean() - 6.0).abs() < 0.5,
            "mean degree {} should be close to d = 6",
            stats.mean()
        );
    }

    #[test]
    fn same_seed_gives_identical_evolution() {
        let mut a = model(50, 3, EdgePolicy::Regenerate, 99);
        let mut b = model(50, 3, EdgePolicy::Regenerate, 99);
        for _ in 0..150 {
            a.step_round();
            b.step_round();
        }
        assert_eq!(a.alive_ids(), b.alive_ids());
        let snap_a = Snapshot::of(a.graph());
        let snap_b = Snapshot::of(b.graph());
        assert_eq!(snap_a, snap_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = model(50, 3, EdgePolicy::Static, 1);
        let mut b = model(50, 3, EdgePolicy::Static, 2);
        for _ in 0..100 {
            a.step_round();
            b.step_round();
        }
        assert_ne!(Snapshot::of(a.graph()), Snapshot::of(b.graph()));
    }

    #[test]
    fn events_are_recorded_in_time_order_when_enabled() {
        let mut m = model(20, 2, EdgePolicy::Regenerate, 8);
        for _ in 0..60 {
            m.step_round();
        }
        let events = m.drain_events();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
        assert!(events.iter().any(ModelEvent::is_churn));
        assert!(events.iter().any(ModelEvent::is_topology));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ModelEvent::EdgeRegenerated { .. })),
            "regeneration events must appear in SDGR"
        );
        assert!(m.drain_events().is_empty(), "drain empties the log");
    }

    #[test]
    fn no_events_recorded_when_disabled() {
        let mut m = StreamingModel::new(StreamingConfig::new(20, 2).seed(1)).unwrap();
        for _ in 0..50 {
            m.step_round();
        }
        assert!(m.drain_events().is_empty());
    }

    #[test]
    fn model_kind_reflects_edge_policy() {
        assert_eq!(
            model(10, 2, EdgePolicy::Static, 0).model_kind(),
            crate::ModelKind::Sdg
        );
        assert_eq!(
            model(10, 2, EdgePolicy::Regenerate, 0).model_kind(),
            crate::ModelKind::Sdgr
        );
    }

    #[test]
    fn graph_invariants_hold_throughout_evolution() {
        let mut m = model(30, 3, EdgePolicy::Regenerate, 10);
        for _ in 0..120 {
            m.step_round();
            m.graph().assert_invariants();
        }
        let mut m = model(30, 3, EdgePolicy::Static, 10);
        for _ in 0..120 {
            m.step_round();
            m.graph().assert_invariants();
        }
    }
}
