//! Shared churn-driver loops.
//!
//! Every dynamic network in this workspace runs one of two churn processes:
//!
//! * **streaming** (Definition 3.2): one join and — once the network is full —
//!   one leave per round, the leaver being the node that joined `n` rounds
//!   earlier;
//! * **Poisson** (Definitions 4.1/4.5): the birth–death jump chain, advanced
//!   until a continuous target time, discarding the overshooting waiting time
//!   by memorylessness.
//!
//! Before this module, those loops were copied verbatim into
//! `StreamingModel`, `PoissonModel`, the RAES protocol model and the p2p
//! overlay — four places a semantics fix (e.g. the death-before-birth order,
//! or the overshoot handling that Lemma 4.6 relies on) would have to be kept
//! in sync by hand. The loops now live here once; each model contributes only
//! what genuinely differs — how a node is spawned and killed — through the
//! [`ChurnHost`] / [`PoissonChurnHost`] hooks.
//!
//! The hooks are a driver SPI, not a user API: calling `spawn` / `kill`
//! directly on a model bypasses its round structure (queues, repair sweeps,
//! summaries) and can violate its invariants. Drive models through
//! [`crate::DynamicNetwork::advance_time_unit`] and friends instead.
//!
//! Determinism contract: the drivers perform **exactly** the random draws the
//! inlined loops performed, in the same order, so trajectories (and recorded
//! seeds) are unchanged by the extraction.

use std::collections::VecDeque;

use churn_graph::{DynamicGraph, NodeId};
use churn_stochastic::process::{BirthDeathChain, Jump, JumpKind};
use serde::{Deserialize, Serialize};

use crate::ChurnSummary;

/// How a Poisson-churn model picks its death victim.
///
/// The paper's churn is *oblivious*: deaths hit a uniformly random alive node
/// ([`VictimPolicy::Uniform`], Definition 4.1). The adversarial variants model
/// an *adaptive* adversary that spends the same death budget on chosen
/// victims — the classic robustness question for expander-maintenance
/// protocols (RAES line of work): does the structure survive when the
/// adversary removes the oldest nodes (whose links have decayed the most) or
/// the best-connected ones (the hubs flooding rides on)?
///
/// Streaming churn already kills deterministically oldest-first (every node
/// lives exactly `n` rounds), so [`VictimPolicy::OldestFirst`] is a no-op
/// there and [`VictimPolicy::HighestDegree`] is rejected at model
/// construction — it would break the exact-lifetime law the streaming
/// analyses depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// Uniformly random alive victim (the paper's oblivious churn).
    #[default]
    Uniform,
    /// The oldest alive node dies (adaptive age-targeted adversary).
    OldestFirst,
    /// The alive node with the most incident links dies (adaptive
    /// degree-targeted adversary; ties broken towards the smallest
    /// identifier). Costs one O(n) scan per death — meant for adversarial
    /// experiments, not for the `n = 10^6` hot path.
    HighestDegree,
}

impl VictimPolicy {
    /// Short label used in reports and sweep seeds.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Uniform => "uniform",
            VictimPolicy::OldestFirst => "oldest-first",
            VictimPolicy::HighestDegree => "highest-degree",
        }
    }

    /// Returns `true` for the adversarial (non-uniform) policies.
    #[must_use]
    pub fn is_adversarial(self) -> bool {
        !matches!(self, VictimPolicy::Uniform)
    }
}

impl std::fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Selects the oldest alive node from a lazily compacted birth-order queue
/// (front = oldest; hosts push on spawn). Entries whose slab cell no longer
/// holds the recorded node — dead, or recycled — are popped on the way, so
/// the amortised cost per death is O(1). Shared by every Poisson-churn host
/// running [`VictimPolicy::OldestFirst`] ([`crate::PoissonModel`], the RAES
/// protocol model in `churn-protocol`).
///
/// # Panics
///
/// Panics when no alive node is recorded in the queue (a death event implies
/// at least one alive node, and hosts push every spawn).
pub fn oldest_alive_victim(
    graph: &DynamicGraph,
    order: &mut VecDeque<(NodeId, u32)>,
) -> (NodeId, u32) {
    loop {
        let &(id, idx) = order
            .front()
            .expect("a death event implies an alive node in the birth-order queue");
        if graph.id_at(idx) == Some(id) {
            return (id, idx);
        }
        order.pop_front();
    }
}

/// Selects the alive node with the most incident links (with multiplicity,
/// [`DynamicGraph::incident_link_count_at`]), ties broken towards the
/// smallest identifier so the choice is independent of slab layout. O(n)
/// member scan per death. Shared by every Poisson-churn host running
/// [`VictimPolicy::HighestDegree`].
///
/// # Panics
///
/// Panics on an empty graph.
pub fn highest_degree_victim(graph: &DynamicGraph) -> (NodeId, u32) {
    let mut best: Option<(usize, NodeId, u32)> = None;
    for &idx in graph.member_indices() {
        let links = graph
            .incident_link_count_at(idx)
            .expect("member cells are occupied");
        let id = graph.id_at(idx).expect("member cells are occupied");
        let better = match best {
            None => true,
            Some((best_links, best_id, _)) => {
                links > best_links || (links == best_links && id < best_id)
            }
        };
        if better {
            best = Some((links, id, idx));
        }
    }
    let (_, id, idx) = best.expect("a death event implies at least one alive node");
    (id, idx)
}

/// Like [`highest_degree_victim`], but served through the graph's
/// degree-bucketed member index ([`DynamicGraph::highest_degree_member`])
/// when a host enabled it ([`DynamicGraph::set_degree_index`]) — amortised
/// O(1) per incident edge change instead of an O(n) member scan per death,
/// which is what makes degree-targeted adversarial grids feasible at
/// `n = 10^6`. Victim choice (max incident links, smallest-identifier
/// tie-break) is identical on both paths, so trajectories do not depend on
/// whether the index is on.
///
/// # Panics
///
/// Panics on an empty graph (a death event implies at least one alive node).
pub fn highest_degree_victim_indexed(graph: &mut DynamicGraph) -> (NodeId, u32) {
    let (id, idx) = graph
        .highest_degree_member()
        .expect("a death event implies at least one alive node");
    (id, idx)
}

/// Model-specific churn hooks: how one node enters and leaves the network.
///
/// Implemented by every model that runs a shared churn driver. These methods
/// are *driver plumbing* — see the module docs for why they must not be
/// called directly.
pub trait ChurnHost {
    /// Spawns one node at model time `time` (identifier allocation, graph
    /// insertion, model-specific wiring such as request placement or queue
    /// enqueueing) and returns its identifier and dense slab index.
    fn spawn(&mut self, time: f64) -> (NodeId, u32);

    /// Kills the alive node `victim` living in slab cell `victim_idx` at
    /// model time `time` (graph removal plus model-specific cleanup such as
    /// edge regeneration or pending-queue bookkeeping).
    fn kill(&mut self, victim: NodeId, victim_idx: u32, time: f64);
}

/// Additional hooks the Poisson jump-chain driver needs.
pub trait PoissonChurnHost: ChurnHost {
    /// Draws the next jump of `chain` given the current population (one RNG
    /// draw; Lemma 4.6).
    fn draw_jump(&mut self, chain: &BirthDeathChain) -> Jump;

    /// Samples a uniformly random alive node as the death victim.
    fn sample_victim(&mut self) -> (NodeId, u32);
}

/// One streaming round (Definition 3.2): the node that joined `n` rounds ago
/// dies first — so, under regeneration, survivors repair among the `n − 1`
/// remaining nodes before the newborn draws its targets (the order behind
/// Lemma 3.14's edge probability) — then this round's node joins and is
/// appended to the birth-order queue.
///
/// `order` is the host's birth-order queue (front = oldest), handed in
/// separately because the host itself is mutably borrowed by the hooks; take
/// it out with `std::mem::take` and put it back after the call.
pub fn streaming_round<H: ChurnHost>(
    host: &mut H,
    order: &mut VecDeque<(NodeId, u32)>,
    n: usize,
    time: f64,
    summary: &mut ChurnSummary,
) {
    if order.len() == n {
        let (victim, victim_idx) = order
            .pop_front()
            .expect("queue holds n nodes, so the front exists");
        host.kill(victim, victim_idx, time);
        summary.record_death(victim);
    }
    let (newborn, newborn_idx) = host.spawn(time);
    order.push_back((newborn, newborn_idx));
    summary.record_birth(newborn);
}

/// The continuous clock of a Poisson jump-chain host: current model time plus
/// the number of jumps processed. Kept as a detached value (it is `Copy`) so
/// the driver can advance it while the host is mutably borrowed by the hooks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JumpClock {
    /// Continuous model time.
    pub time: f64,
    /// Jump-chain events processed so far (Definition 4.5's round index).
    pub jumps: u64,
}

/// Advances the jump chain until `target` (Definition 4.5 / Lemma 4.6),
/// processing every churn event in between. A sampled waiting time that would
/// overshoot `target` is discarded and the clock set to `target`: by
/// memorylessness the residual wait past `target` is statistically identical
/// to a fresh draw there.
///
/// [`ChurnSummary::record_death`]'s net-effect bookkeeping scans the window's
/// accumulated births, so accumulating one summary over a window spanning
/// millions of events is quadratic. Callers that discard the summary anyway —
/// warm-up advances a window of length `3n` — should use
/// [`poisson_advance_until_discarding`].
pub fn poisson_advance_until<H: PoissonChurnHost>(
    host: &mut H,
    chain: &BirthDeathChain,
    clock: &mut JumpClock,
    target: f64,
    summary: &mut ChurnSummary,
) {
    poisson_advance_impl(host, chain, clock, target, Some(summary));
}

/// [`poisson_advance_until`] without churn-summary accumulation: the hooks
/// still see every event (event logs, birth times and topology mutations are
/// identical, as is the RNG stream), only the who-was-born-and-died report is
/// skipped. This keeps long warm-up windows linear in the event count.
pub fn poisson_advance_until_discarding<H: PoissonChurnHost>(
    host: &mut H,
    chain: &BirthDeathChain,
    clock: &mut JumpClock,
    target: f64,
) {
    poisson_advance_impl(host, chain, clock, target, None);
}

fn poisson_advance_impl<H: PoissonChurnHost>(
    host: &mut H,
    chain: &BirthDeathChain,
    clock: &mut JumpClock,
    target: f64,
    mut summary: Option<&mut ChurnSummary>,
) {
    while clock.time < target {
        let jump = host.draw_jump(chain);
        if clock.time + jump.waiting_time > target {
            clock.time = target;
            break;
        }
        clock.time += jump.waiting_time;
        clock.jumps += 1;
        match jump.kind {
            JumpKind::Birth => {
                let (id, _) = host.spawn(clock.time);
                if let Some(summary) = summary.as_deref_mut() {
                    summary.record_birth(id);
                }
            }
            JumpKind::Death => {
                let (victim, victim_idx) = host.sample_victim();
                host.kill(victim, victim_idx, clock.time);
                if let Some(summary) = summary.as_deref_mut() {
                    summary.record_death(victim);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy host: nodes are a counter, deaths pop the recorded population.
    struct ToyHost {
        next: u64,
        alive: Vec<(NodeId, u32)>,
        rng: churn_stochastic::rng::SimRng,
        spawn_times: Vec<f64>,
        kill_times: Vec<f64>,
    }

    impl ToyHost {
        fn new(seed: u64) -> Self {
            ToyHost {
                next: 0,
                alive: Vec::new(),
                rng: churn_stochastic::rng::seeded_rng(seed),
                spawn_times: Vec::new(),
                kill_times: Vec::new(),
            }
        }
    }

    impl ChurnHost for ToyHost {
        fn spawn(&mut self, time: f64) -> (NodeId, u32) {
            let id = NodeId::new(self.next);
            let idx = self.next as u32;
            self.next += 1;
            self.alive.push((id, idx));
            self.spawn_times.push(time);
            (id, idx)
        }

        fn kill(&mut self, victim: NodeId, victim_idx: u32, time: f64) {
            let pos = self
                .alive
                .iter()
                .position(|&(id, idx)| (id, idx) == (victim, victim_idx))
                .expect("victim is alive");
            self.alive.swap_remove(pos);
            self.kill_times.push(time);
        }
    }

    impl PoissonChurnHost for ToyHost {
        fn draw_jump(&mut self, chain: &BirthDeathChain) -> Jump {
            chain.next_jump(self.alive.len() as u64, &mut self.rng)
        }

        fn sample_victim(&mut self) -> (NodeId, u32) {
            use rand::Rng;
            self.alive[self.rng.gen_range(0..self.alive.len())]
        }
    }

    #[test]
    fn victim_policy_labels_and_adversarial_flag() {
        assert_eq!(VictimPolicy::default(), VictimPolicy::Uniform);
        assert!(!VictimPolicy::Uniform.is_adversarial());
        assert!(VictimPolicy::OldestFirst.is_adversarial());
        assert!(VictimPolicy::HighestDegree.is_adversarial());
        assert_eq!(VictimPolicy::OldestFirst.to_string(), "oldest-first");
        assert_eq!(VictimPolicy::HighestDegree.label(), "highest-degree");
    }

    #[test]
    fn oldest_alive_victim_skips_stale_queue_entries() {
        use churn_graph::DynamicGraph;
        let mut g = DynamicGraph::new();
        let mut order: VecDeque<(NodeId, u32)> = VecDeque::new();
        for raw in 0..4u64 {
            let idx = g.add_node_indexed(NodeId::new(raw), 0).unwrap();
            order.push_back((NodeId::new(raw), idx));
        }
        // Node 0 dies out of band and its cell is recycled by node 9: the
        // stale front entry must be skipped, not resurrected.
        let idx0 = g.dense_index_of(NodeId::new(0)).unwrap();
        g.remove_node_at(idx0).unwrap();
        let reused = g.add_node_indexed(NodeId::new(9), 0).unwrap();
        assert_eq!(reused, idx0);
        let (victim, idx) = oldest_alive_victim(&g, &mut order);
        assert_eq!(victim, NodeId::new(1));
        assert_eq!(g.id_at(idx), Some(NodeId::new(1)));
    }

    #[test]
    fn highest_degree_victim_picks_the_hub_with_id_tie_break() {
        use churn_graph::DynamicGraph;
        let mut g = DynamicGraph::new();
        for raw in 0..5u64 {
            g.add_node(NodeId::new(raw), 3).unwrap();
        }
        // Node 2 gets three incident links, everyone else at most two.
        g.set_out_slot(NodeId::new(0), 0, NodeId::new(2)).unwrap();
        g.set_out_slot(NodeId::new(1), 0, NodeId::new(2)).unwrap();
        g.set_out_slot(NodeId::new(2), 0, NodeId::new(3)).unwrap();
        let (victim, idx) = highest_degree_victim(&g);
        assert_eq!(victim, NodeId::new(2));
        assert_eq!(g.id_at(idx), Some(NodeId::new(2)));
        // Tie-break: with all-equal degrees the smallest identifier wins.
        let mut g = DynamicGraph::new();
        for raw in [7u64, 3, 5] {
            g.add_node(NodeId::new(raw), 0).unwrap();
        }
        let (victim, _) = highest_degree_victim(&g);
        assert_eq!(victim, NodeId::new(3));
    }

    #[test]
    fn streaming_round_is_death_first_then_birth_at_full_size() {
        let mut host = ToyHost::new(0);
        let mut order = VecDeque::new();
        let n = 3;
        let mut summary = ChurnSummary::new();
        for round in 1..=10u64 {
            summary.clear();
            streaming_round(&mut host, &mut order, n, round as f64, &mut summary);
            assert_eq!(summary.births.len(), 1);
            assert_eq!(order.len(), host.alive.len());
            if round <= n as u64 {
                assert!(summary.deaths.is_empty(), "no deaths while filling up");
            } else {
                // The death is always the node that joined n rounds earlier.
                assert_eq!(summary.deaths, vec![NodeId::new(round - 1 - n as u64)]);
            }
        }
        assert_eq!(order.len(), n);
    }

    #[test]
    fn poisson_driver_stops_exactly_at_target_and_stamps_event_times() {
        let chain = BirthDeathChain::new(1.0, 1.0 / 50.0);
        let mut host = ToyHost::new(7);
        let mut clock = JumpClock::default();
        let mut summary = ChurnSummary::new();
        poisson_advance_until(&mut host, &chain, &mut clock, 200.0, &mut summary);
        assert!((clock.time - 200.0).abs() < 1e-12);
        assert!(clock.jumps > 0);
        assert_eq!(
            clock.jumps as usize,
            host.spawn_times.len() + host.kill_times.len(),
            "every jump is a spawn or a kill"
        );
        assert!(!host.alive.is_empty());
        // Event timestamps are monotone and within the window.
        let mut all: Vec<f64> = host.spawn_times.clone();
        all.extend(&host.kill_times);
        assert!(all.iter().all(|&t| t > 0.0 && t <= 200.0));
        // Advancing to the current time is a no-op.
        let jumps_before = clock.jumps;
        poisson_advance_until(&mut host, &chain, &mut clock, 200.0, &mut summary);
        assert_eq!(clock.jumps, jumps_before);
    }
}
