//! Error type for model construction and use.

use std::error::Error;
use std::fmt;

/// Errors produced when building or driving a dynamic network model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The target network size is too small to be meaningful.
    NetworkTooSmall {
        /// Requested expected network size.
        requested: usize,
        /// Smallest supported size.
        minimum: usize,
    },
    /// The per-node out-degree `d` is invalid.
    InvalidDegree {
        /// Requested degree.
        requested: usize,
    },
    /// A rate parameter (λ or µ) of the Poisson model is invalid.
    InvalidRate {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The in-degree capacity factor `c` of a maintenance protocol (e.g. the
    /// RAES cap `c·d`) is invalid.
    InvalidCapacityFactor {
        /// The rejected value.
        value: f64,
    },
    /// The attempts-per-round knob of a maintenance protocol (how many
    /// contacts a pending repair request may make within one round) is
    /// invalid.
    InvalidAttempts {
        /// The rejected value (must be at least 1).
        requested: usize,
    },
    /// The requested [`crate::driver::VictimPolicy`] cannot run on this model
    /// kind (e.g. degree-targeted deaths on streaming churn, whose death
    /// schedule is structurally fixed to oldest-first).
    UnsupportedVictimPolicy {
        /// Label of the model kind.
        kind: &'static str,
        /// Label of the rejected policy.
        policy: &'static str,
    },
    /// The requested [`crate::ModelKind`] is implemented outside `churn-core`
    /// (e.g. the RAES protocol in `churn-protocol`), so this crate cannot
    /// construct it.
    ExternalModelKind {
        /// Label of the kind (e.g. `"RAES"`).
        kind: &'static str,
        /// Name of the crate that implements it.
        implemented_in: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NetworkTooSmall { requested, minimum } => write!(
                f,
                "network size {requested} is too small (minimum supported is {minimum})"
            ),
            ModelError::InvalidDegree { requested } => {
                write!(f, "out-degree {requested} is invalid (must be at least 1)")
            }
            ModelError::InvalidRate { parameter, value } => write!(
                f,
                "rate parameter {parameter} = {value} is invalid (must be finite and positive)"
            ),
            ModelError::InvalidAttempts { requested } => write!(
                f,
                "attempts-per-round {requested} is invalid (must be at least 1)"
            ),
            ModelError::InvalidCapacityFactor { value } => write!(
                f,
                "capacity factor c = {value} is invalid (must be finite and at least 1)"
            ),
            ModelError::UnsupportedVictimPolicy { kind, policy } => write!(
                f,
                "victim policy {policy} is not supported by model kind {kind} \
                 (streaming churn kills deterministically oldest-first)"
            ),
            ModelError::ExternalModelKind {
                kind,
                implemented_in,
            } => write!(
                f,
                "model kind {kind} is implemented in the {implemented_in} crate, not churn-core"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::NetworkTooSmall {
            requested: 1,
            minimum: 2,
        };
        assert!(e.to_string().contains("too small"));
        let e = ModelError::InvalidDegree { requested: 0 };
        assert!(e.to_string().contains("out-degree"));
        let e = ModelError::InvalidRate {
            parameter: "lambda",
            value: -1.0,
        };
        assert!(e.to_string().contains("lambda"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
