//! The flooding process over dynamic networks (Definitions 3.3, 4.2 and 4.3).
//!
//! Flooding is the diffusion process in which, one message delay after being
//! informed, a node forwards the information to all of its current neighbours.
//! Over a dynamic network this interacts with churn in two ways: newly informed
//! nodes can die before forwarding, and newly born nodes start uninformed.
//!
//! The implementation advances in *message-delay units*: one flooding round is
//! one call to [`DynamicNetwork::advance_time_unit`]. For streaming models this
//! is exactly Definition 3.3. For Poisson models it is the asynchronous process
//! of Definition 4.2 observed at integer times: the set `I_t` at observation
//! time `t` consists of the previously informed survivors plus every node that
//! was, at time `t − 1`, a neighbour of an informed node and is still alive at
//! `t`. (The fully "discretized" process of Definition 4.3 — which additionally
//! requires the connecting edge to persist throughout the interval — is a
//! pessimistic analysis device; the synchronous observation used here is the
//! natural simulation of the process the paper's theorems describe.)
//!
//! Two engines drive the round: the sequential [`FloodingProcess`] and the
//! sharded [`ParallelFrontier`], which fans the boundary sweep across the
//! rayon pool and direction-switches between pushing from the informed set
//! and pulling over the alive slab range (Ligra-style) once the informed
//! fraction crosses the `≈ √(1/2d)` cost crossover. Both produce identical
//! informed sets round for round ([`run_flooding`] /
//! [`run_flooding_parallel`] return identical records); the parallel engine
//! exists purely for wall-clock speed at `n ≥ 10^5`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use churn_graph::{DenseHandle, DynamicGraph, NodeId};

use crate::model::DynamicNetwork;
use crate::ChurnSummary;

/// Behavior-tag bit marking a node as Byzantine (assigned by a protocol
/// layer via [`DynamicGraph::set_tag_at`]; `0` = honest). The flooding
/// engines use this to split informed/alive counts into honest-only
/// variants — see [`RoundStats::informed_honest`].
pub const TAG_BYZANTINE: u8 = 0x1;

/// Behavior-tag bit marking a node that never forwards the broadcast
/// (protocol-honest on the repair path but silent on the flooding overlay).
/// A node carrying this bit still *becomes* informed — it just never acts
/// as a source in the boundary sweep.
pub const TAG_NO_FORWARD: u8 = 0x2;

/// How to pick the node that starts the broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloodingSource {
    /// Advance the model until the next node joins and start from it — the
    /// paper's convention ("the flooding process starting at `t0` from the node
    /// joining the network at round `t0`").
    NextToJoin,
    /// Start from the most recently joined node that is still alive (falls back
    /// to [`FloodingSource::NextToJoin`] if none is known).
    Newest,
    /// Start from a specific alive node (falls back to
    /// [`FloodingSource::NextToJoin`] if it is not alive).
    Node(NodeId),
}

/// Stopping rules and bookkeeping limits for [`run_flooding`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodingConfig {
    /// Hard cap on the number of flooding rounds simulated.
    pub max_rounds: u64,
    /// Optional early-stop: finish as soon as the informed fraction reaches this
    /// value (used by the partial-flooding experiments of Theorems 3.8 / 4.13).
    pub target_fraction: Option<f64>,
    /// Stop as soon as the broadcast is complete (`I_t ⊇ N_{t−1} ∩ N_t`).
    pub stop_when_complete: bool,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            max_rounds: 4_096,
            target_fraction: None,
            stop_when_complete: true,
        }
    }
}

impl FloodingConfig {
    /// Configuration with a specific round cap.
    #[must_use]
    pub fn with_max_rounds(max_rounds: u64) -> Self {
        FloodingConfig {
            max_rounds,
            ..Self::default()
        }
    }

    /// Sets the early-stop target fraction.
    #[must_use]
    pub fn target_fraction(mut self, fraction: f64) -> Self {
        self.target_fraction = Some(fraction);
        self
    }
}

/// Per-round observation of a flooding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Rounds elapsed since the start of the flooding (1 for the first step).
    pub round: u64,
    /// Model time after the step.
    pub time: f64,
    /// Number of informed alive nodes after the step.
    pub informed: usize,
    /// Number of alive nodes after the step.
    pub alive: usize,
    /// Number of nodes informed for the first time in this step (and alive at
    /// its end).
    pub newly_informed: usize,
    /// Whether the broadcast is complete after this step.
    pub complete: bool,
    /// Informed alive nodes carrying no behavior tag ([`TAG_BYZANTINE`]).
    /// Equals `informed` while the graph has no tags.
    pub informed_honest: usize,
    /// Alive nodes carrying no behavior tag. Equals `alive` while the graph
    /// has no tags.
    pub alive_honest: usize,
    /// Completion restricted to the honest subpopulation: every honest node
    /// alive at the previous observation and still alive now is informed.
    /// Equals `complete` while the graph has no tags.
    pub honest_complete: bool,
}

impl RoundStats {
    /// Fraction of alive nodes that are informed (0 when the network is empty).
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        if self.alive == 0 {
            0.0
        } else {
            self.informed as f64 / self.alive as f64
        }
    }

    /// Fraction of honest alive nodes that are informed (0 when no honest
    /// node is alive). Equals [`Self::informed_fraction`] on untagged graphs.
    #[must_use]
    pub fn honest_fraction(&self) -> f64 {
        if self.alive_honest == 0 {
            0.0
        } else {
            self.informed_honest as f64 / self.alive_honest as f64
        }
    }
}

/// How a flooding run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FloodingOutcome {
    /// The broadcast completed: every node alive at the previous observation and
    /// still alive now is informed.
    Completed {
        /// Rounds needed (the paper's *flooding time*).
        rounds: u64,
    },
    /// The requested target fraction was reached before completion.
    ReachedTarget {
        /// Rounds needed to reach the target.
        rounds: u64,
        /// Informed fraction at that point.
        fraction: f64,
    },
    /// The broadcast died out: the informed set never grew beyond a handful of
    /// nodes (at most `d + 1`, the failure mode of Theorems 3.7 / 4.12) or every
    /// informed node died.
    DiedOut {
        /// Rounds simulated before dying out or hitting the cap.
        rounds: u64,
        /// Largest informed-set size ever observed.
        peak_informed: usize,
    },
    /// The round cap was reached without completing, reaching the target, or
    /// dying out.
    RoundLimit {
        /// Informed fraction when the cap was hit.
        fraction: f64,
    },
}

impl FloodingOutcome {
    /// Returns `true` when the broadcast completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, FloodingOutcome::Completed { .. })
    }

    /// Returns `true` when the broadcast died out.
    #[must_use]
    pub fn is_died_out(&self) -> bool {
        matches!(self, FloodingOutcome::DiedOut { .. })
    }

    /// The number of rounds after which the run ended, when meaningful.
    #[must_use]
    pub fn rounds(&self) -> Option<u64> {
        match self {
            FloodingOutcome::Completed { rounds }
            | FloodingOutcome::ReachedTarget { rounds, .. }
            | FloodingOutcome::DiedOut { rounds, .. } => Some(*rounds),
            FloodingOutcome::RoundLimit { .. } => None,
        }
    }
}

/// Complete record of one flooding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodingRecord {
    /// The source node.
    pub source: NodeId,
    /// Model time at which the source was informed.
    pub start_time: f64,
    /// Per-round observations, in order.
    pub rounds: Vec<RoundStats>,
    /// How the run ended.
    pub outcome: FloodingOutcome,
}

impl FloodingRecord {
    /// Number of rounds simulated.
    #[must_use]
    pub fn rounds_elapsed(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Informed fraction at the end of the run (0 if no round was simulated).
    #[must_use]
    pub fn final_fraction(&self) -> f64 {
        self.rounds
            .last()
            .map_or(0.0, RoundStats::informed_fraction)
    }

    /// Largest informed-set size observed during the run.
    #[must_use]
    pub fn peak_informed(&self) -> usize {
        self.rounds.iter().map(|r| r.informed).max().unwrap_or(0)
    }

    /// First round at which the informed fraction reached `fraction`, if ever.
    #[must_use]
    pub fn rounds_to_fraction(&self, fraction: f64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.informed_fraction() >= fraction)
            .map(|r| r.round)
    }
}

/// A slab-indexed bitset whose 64-bit words are atomic, so parallel workers
/// can merge into it lock-free while sequential users pay nothing extra.
///
/// * **Sequential path** ([`Self::set`], [`Self::clear`]): exclusive `&mut`
///   access compiles the atomics down to plain loads and stores.
/// * **Parallel path** ([`Self::set_shared`]): workers share `&AtomicBitset`
///   and merge through a per-word atomic fetch-OR whose return value tells
///   the calling worker whether *it* switched the bit on — exactly one worker
///   claims each newly covered index, with no locks and no duplicate entries.
///
/// Set-union is order-independent, so the bitset contents after a parallel
/// merge are bit-identical to the sequential insertion of the same indices in
/// any order and at any thread count; `crates/core/tests/prop_flooding_bitset.rs`
/// pins this with a property test.
#[derive(Debug, Default)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
}

impl Clone for AtomicBitset {
    fn clone(&self) -> Self {
        AtomicBitset {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl AtomicBitset {
    /// An empty bitset pre-sized for `bits` bits.
    #[must_use]
    pub fn with_bit_capacity(bits: usize) -> Self {
        let mut set = Self::default();
        set.ensure_bits(bits);
        set
    }

    /// Grows the word array (zero-filled) until it covers `bits` bits.
    /// [`Self::set_shared`] requires its index to be covered beforehand —
    /// shared workers cannot grow the array.
    pub fn ensure_bits(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if self.words.len() < words {
            self.words.resize_with(words, AtomicU64::default);
        }
    }

    /// Number of 64-bit words currently backing the set.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn split(idx: u32) -> (usize, u64) {
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// Tests a bit (relaxed load; out-of-range indices read as unset).
    #[inline]
    #[must_use]
    pub fn test(&self, idx: u32) -> bool {
        let (word, mask) = Self::split(idx);
        self.words
            .get(word)
            .is_some_and(|w| w.load(Ordering::Relaxed) & mask != 0)
    }

    /// Exclusive-access set, growing the words on demand; returns `true` when
    /// the bit was newly set.
    #[inline]
    pub fn set(&mut self, idx: u32) -> bool {
        let (word, mask) = Self::split(idx);
        if word >= self.words.len() {
            self.words.resize_with(word + 1, AtomicU64::default);
        }
        let w = self.words[word].get_mut();
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        true
    }

    /// Shared-access set: merges the bit through a per-word atomic fetch-OR.
    /// Returns `true` iff this call switched the bit from 0 to 1 (exactly one
    /// of any number of racing callers observes `true`).
    ///
    /// # Panics
    ///
    /// Panics when `idx` is beyond the capacity reserved with
    /// [`Self::ensure_bits`]: growth needs exclusive access, so shared
    /// writers must operate within the pre-sized range.
    #[inline]
    pub fn set_shared(&self, idx: u32) -> bool {
        let (word, mask) = Self::split(idx);
        let prev = self.words[word].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Shared-access clear: removes the bit through a per-word atomic
    /// fetch-AND. Safe to race with other shared *clears* (set-minus is
    /// order-independent); racing it with concurrent `set_shared` calls on
    /// the same word would make the outcome scheduling-dependent, so the
    /// engines never mix the two phases. Used by the parallel `is_current`
    /// revalidation sweep.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is beyond the capacity reserved with
    /// [`Self::ensure_bits`] (shared writers cannot grow the array).
    #[inline]
    pub fn clear_shared(&self, idx: u32) {
        let (word, mask) = Self::split(idx);
        self.words[word].fetch_and(!mask, Ordering::Relaxed);
    }

    /// Exclusive-access clear (out-of-range indices are a no-op).
    #[inline]
    pub fn clear(&mut self, idx: u32) {
        let (word, mask) = Self::split(idx);
        if let Some(w) = self.words.get_mut(word) {
            *w.get_mut() &= !mask;
        }
    }

    /// Copies the current words into `out` (replacing its contents): a frozen
    /// point-in-time snapshot that stays valid while shared writers keep
    /// merging into `self`. The parallel flooding engine reads the *pre-round*
    /// informed set from such a snapshot so that intra-round discoveries can
    /// never chain (which would break the one-hop-per-round semantics).
    pub fn snapshot_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.words.iter().map(|w| w.load(Ordering::Relaxed)));
    }
}

/// Probes a frozen [`AtomicBitset::snapshot_into`] word dump.
#[inline]
fn frozen_test(frozen: &[u64], idx: u32) -> bool {
    frozen
        .get((idx / 64) as usize)
        .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
}

/// The informed set, stored densely: one bit per slab cell of the underlying
/// [`churn_graph::DynamicGraph`], plus the list of informed
/// `(DenseHandle, NodeId)` entries. The bitset makes the per-round "is this
/// neighbour already informed?" check a single word probe, and the entry list
/// bounds all per-round work by the informed population instead of the
/// network size.
///
/// Slab cells are recycled across churn, so after every churn interval the
/// entries are revalidated against the live graph through the
/// generation-tagged handle ([`churn_graph::DynamicGraph::is_current`] — one
/// flat counter probe, no identifier compare); stale entries — dead nodes, or
/// cells reused by newborns — drop out and their bits are cleared. A
/// conventional `HashSet<NodeId>` view exists only at the API boundary
/// ([`FloodingProcess::informed`]).
#[derive(Debug, Clone, Default)]
struct InformedSet {
    bits: AtomicBitset,
    entries: Vec<(DenseHandle, NodeId)>,
}

impl InformedSet {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn ensure_capacity(&mut self, slab_len: usize) {
        self.bits.ensure_bits(slab_len);
    }

    #[inline]
    fn test(&self, idx: u32) -> bool {
        self.bits.test(idx)
    }

    /// Sets the bit and records the entry; returns `false` when already set.
    #[inline]
    fn insert(&mut self, handle: DenseHandle, id: NodeId) -> bool {
        if !self.bits.set(handle.index) {
            return false;
        }
        self.entries.push((handle, id));
        true
    }

    #[inline]
    fn clear_bit(&mut self, idx: u32) {
        self.bits.clear(idx);
    }
}

/// A step-by-step flooding process, for callers that want to interleave their
/// own measurements between rounds. [`run_flooding`] is the batteries-included
/// driver built on top of it.
#[derive(Debug, Clone)]
pub struct FloodingProcess {
    source: NodeId,
    start_time: f64,
    informed: InformedSet,
    rounds: u64,
    complete: bool,
    peak_informed: usize,
    /// Entry-list position where the most recent round's newly informed
    /// entries start (everything before it survived from the previous round).
    last_new_from: usize,
}

impl FloodingProcess {
    /// Starts a flooding process from an alive source node.
    ///
    /// Returns `None` if `source` is not alive in `model`.
    pub fn from_source<M: DynamicNetwork + ?Sized>(model: &M, source: NodeId) -> Option<Self> {
        let source_handle = model.graph().handle_of(source)?;
        let mut informed = InformedSet::default();
        informed.ensure_capacity(model.graph().slab_len());
        informed.insert(source_handle, source);
        Some(FloodingProcess {
            source,
            start_time: model.time(),
            informed,
            rounds: 0,
            complete: false,
            peak_informed: 1,
            last_new_from: 0,
        })
    }

    /// Resolves a [`FloodingSource`] (possibly advancing the model to the next
    /// join) and starts the process from it.
    pub fn start<M: DynamicNetwork + ?Sized>(model: &mut M, source: FloodingSource) -> Self {
        let source_id = match source {
            FloodingSource::Node(id) if model.contains(id) => Some(id),
            FloodingSource::Newest => model.newest_node(),
            _ => None,
        };
        let source_id = source_id.unwrap_or_else(|| loop {
            let summary = model.advance_time_unit();
            if let Some(&id) = summary.births.last() {
                break id;
            }
        });
        Self::from_source(model, source_id).expect("source is alive by construction")
    }

    /// The source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Model time at which the source was informed.
    #[must_use]
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// The currently informed (alive) nodes, as a set of identifiers.
    ///
    /// This is the API-boundary view of the internal bitset and is rebuilt on
    /// every call; prefer [`Self::informed_count`] in measurement loops.
    #[must_use]
    pub fn informed(&self) -> HashSet<NodeId> {
        self.informed.entries.iter().map(|&(_, id)| id).collect()
    }

    /// Number of currently informed nodes.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Dense slab indices of the currently informed entries, in entry order.
    /// Valid until the underlying graph churns; observers (e.g. the
    /// informed-overlap tracker in `churn-observe`) consume these instead of
    /// the identifier set to stay allocation- and hash-free.
    pub fn informed_dense(&self) -> impl Iterator<Item = u32> + '_ {
        self.informed
            .entries
            .iter()
            .map(|&(handle, _)| handle.index)
    }

    /// Dense slab indices of the nodes informed for the first time in the
    /// most recent round (and alive at its end) — the O(newly informed)
    /// feed for incremental observers. Before the first step this yields the
    /// source (the only node informed so far).
    pub fn newly_informed_dense(&self) -> impl Iterator<Item = u32> + '_ {
        let from = self.last_new_from.min(self.informed.entries.len());
        self.informed.entries[from..]
            .iter()
            .map(|&(handle, _)| handle.index)
    }

    /// Largest informed-set size observed so far.
    #[must_use]
    pub fn peak_informed(&self) -> usize {
        self.peak_informed
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether the broadcast is complete (`I_t ⊇ N_{t−1} ∩ N_t` at the last
    /// step).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Drops informed entries whose slab cell no longer holds their node
    /// (death, or cell reuse by a newborn): the generation-tagged handle
    /// fails [`DynamicGraph::is_current`] in O(1), with no identifier
    /// compare and no record access. Returns how many of the first `prefix`
    /// entries survived.
    fn revalidate<M: DynamicNetwork + ?Sized>(&mut self, model: &M, prefix: usize) -> usize {
        let graph = model.graph();
        let mut surviving_prefix = 0usize;
        let mut write = 0usize;
        for read in 0..self.informed.entries.len() {
            let (handle, id) = self.informed.entries[read];
            if graph.is_current(handle) {
                if read < prefix {
                    surviving_prefix += 1;
                }
                self.informed.entries[write] = (handle, id);
                write += 1;
            } else {
                self.informed.clear_bit(handle.index);
            }
        }
        self.informed.entries.truncate(write);
        surviving_prefix
    }

    /// Boundary sweep in the current snapshot G_{t-1}: expands the bitset over
    /// the dense adjacency of the first `prev_len` entries. Entries appended
    /// during the sweep are the frontier of this round; they are not
    /// re-expanded (their bits are set, so the loop over the pre-existing
    /// prefix suffices). This is also the sequential fallback of
    /// [`ParallelFrontier`].
    fn expand_sequential(&mut self, graph: &DynamicGraph, prev_len: usize) {
        let tagged = graph.tags_enabled();
        for i in 0..prev_len {
            let idx = self.informed.entries[i].0.index;
            if tagged && graph.tag_at(idx) & TAG_NO_FORWARD != 0 {
                continue; // informed but silent: never a source
            }
            for nb in graph.neighbor_indices_at(idx) {
                if !self.informed.test(nb) {
                    let nb_handle = graph
                        .handle_at(nb)
                        .expect("adjacency points at alive cells");
                    let nb_id = graph.id_at(nb).expect("adjacency points at alive cells");
                    self.informed.insert(nb_handle, nb_id);
                }
            }
        }
    }

    /// Post-churn bookkeeping shared by the sequential and parallel engines:
    /// revalidates against `I_t = (I_{t-1} ∪ ∂out(I_{t-1})) ∩ N_t`, updates
    /// the counters and the completion flag, and builds the round stats.
    fn finish_round<M: DynamicNetwork + ?Sized>(
        &mut self,
        model: &M,
        summary: &ChurnSummary,
        prev_len: usize,
    ) -> RoundStats {
        let surviving_prev = self.revalidate(model, prev_len);
        self.finish_round_with(model, summary, surviving_prev)
    }

    /// [`Self::finish_round`] with the revalidation already done (the
    /// parallel engine runs its sharded revalidation sweep first and hands
    /// in the surviving-prefix count).
    fn finish_round_with<M: DynamicNetwork + ?Sized>(
        &mut self,
        model: &M,
        summary: &ChurnSummary,
        surviving_prev: usize,
    ) -> RoundStats {
        let newly_informed = self.informed.entries.len() - surviving_prev;
        self.last_new_from = surviving_prev;
        self.rounds += 1;
        self.peak_informed = self.peak_informed.max(self.informed.len());

        // Completion: every alive node that is not a newcomer of this interval
        // is informed, i.e. I_t ⊇ N_{t-1} ∩ N_t. Newborns are never informed
        // (the boundary sweep preceded their birth), so a counting argument
        // replaces the former full scan over the alive set.
        let alive = model.alive_count();
        let births_alive = summary
            .births
            .iter()
            .filter(|&&id| model.contains(id))
            .count();
        self.complete = self.informed.len() + births_alive == alive;

        // Honest-only accounting: on untagged graphs the honest figures
        // coincide with the global ones at zero extra cost; with tags the
        // split is one O(informed + births) pass over data already touched.
        let graph = model.graph();
        let (informed_honest, alive_honest, honest_complete) = if graph.tags_enabled() {
            let informed_honest = self
                .informed
                .entries
                .iter()
                .filter(|&&(handle, _)| graph.tag_at(handle.index) == 0)
                .count();
            let alive_honest = alive - graph.tagged_member_count();
            let honest_births = summary
                .births
                .iter()
                .filter_map(|&id| graph.dense_index_of(id))
                .filter(|&idx| graph.tag_at(idx) == 0)
                .count();
            (
                informed_honest,
                alive_honest,
                informed_honest + honest_births == alive_honest,
            )
        } else {
            (self.informed.len(), alive, self.complete)
        };

        RoundStats {
            round: self.rounds,
            time: model.time(),
            informed: self.informed.len(),
            alive,
            newly_informed,
            complete: self.complete,
            informed_honest,
            alive_honest,
            honest_complete,
        }
    }

    /// Executes one flooding round: every neighbour (in the current snapshot) of
    /// an informed node becomes informed one time unit later, the model advances
    /// by that time unit, and informed nodes that died are dropped.
    pub fn step<M: DynamicNetwork + ?Sized>(&mut self, model: &mut M) -> RoundStats {
        // The caller may have churned the model between steps (the process
        // only observes it through this method), so first drop entries whose
        // slab cell was vacated or recycled — otherwise the boundary sweep
        // below would expand a newborn's adjacency as if it were informed.
        self.revalidate(model, 0);

        let prev_len = self.informed.entries.len();
        {
            let graph = model.graph();
            self.informed.ensure_capacity(graph.slab_len());
            self.expand_sequential(graph, prev_len);
        }

        // One message-delay unit of churn.
        let summary: ChurnSummary = model.advance_time_unit();
        self.finish_round(model, &summary, prev_len)
    }
}

/// Expansion strategy the [`ParallelFrontier`] engine used in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrontierDirection {
    /// Below the size cutoff: plain sequential sweep.
    Sequential,
    /// Informed set still small: shard the informed entries and push along
    /// their adjacency.
    Push,
    /// Informed fraction past the crossover: shard the alive slab range and
    /// pull — each uninformed cell scans its neighbours for an informed one.
    Pull,
}

/// Alive-population cutoff below which [`ParallelFrontier`] stays sequential:
/// at small sizes a round is microseconds and fork-join overhead would
/// dominate.
pub const PARALLEL_FLOODING_CUTOFF: usize = 1 << 14;

/// Direction heuristic of the [`ParallelFrontier`] engine.
///
/// Per round, push costs ~`informed · 2d` random adjacency probes, while pull
/// costs ~`alive` sequential bit probes plus, per uninformed cell, an
/// early-exiting neighbour scan of expected length `min(2d, alive/informed)`.
/// Equating the two puts the crossover near `informed/alive ≈ √(1/2d)`, i.e.
/// pull wins once `informed² · 2d ≥ alive²` — for `d = 8` that is an informed
/// fraction of 25%. Late rounds (`informed ≈ alive`) then cost a near-pure
/// linear scan instead of `alive · 2d` random probes, which is where the bulk
/// of a complete broadcast's work lives.
#[must_use]
fn pull_is_cheaper(informed: usize, alive: usize, d: usize) -> bool {
    let informed = informed as u128;
    let alive = alive as u128;
    informed * informed * 2 * d.max(1) as u128 >= alive * alive
}

/// The sharded parallel flooding engine.
///
/// Wraps the same informed-set state as [`FloodingProcess`] (the two produce
/// identical per-round informed sets — pinned by `tests/parallel_flooding.rs`
/// at 1, 2, 4 and 8 threads over all five model kinds) and replaces the
/// boundary sweep with a fork-join over the rayon pool:
///
/// * **Push** (small informed set): the informed entry list is cut into
///   `threads` contiguous chunks; each worker expands its chunk's adjacency,
///   claims newly covered cells through the shared [`AtomicBitset`]'s
///   per-word fetch-OR, and stages the indices it won in a thread-local
///   buffer.
/// * **Pull** (informed fraction past [`pull_is_cheaper`]'s crossover): each
///   worker walks one contiguous slab range
///   ([`DynamicGraph::par_alive_ranges`]) and informs every uninformed alive
///   cell that has a neighbour in the *frozen* pre-round bitset snapshot —
///   frozen, so intra-round discoveries cannot chain into multi-hop spread.
///   Late rounds therefore cost `O(alive / threads)` per worker instead of
///   `O(informed · d)` random probes.
/// * **Merge**: the thread-local buffers are concatenated and sorted (which
///   shard won a boundary cell is scheduling-dependent; the sort restores a
///   schedule-independent ascending entry order), then appended to the entry
///   list. Since set-union is order-independent, the resulting informed set
///   is bit-identical to the sequential engine's at any thread count.
///
/// Below [`PARALLEL_FLOODING_CUTOFF`] alive nodes the engine falls back to
/// the sequential sweep outright. A one-thread budget keeps the direction
/// switch (it is an algorithmic win, independent of parallelism); the
/// fork-join then runs inline with a single shard.
#[derive(Debug, Clone)]
pub struct ParallelFrontier {
    process: FloodingProcess,
    threads: usize,
    sequential_cutoff: usize,
    /// Frozen pre-round bitset words (reused across rounds).
    frozen: Vec<u64>,
    /// Per-shard staging buffers of newly informed dense indices (reused).
    shard_bufs: Vec<Vec<u32>>,
    /// Concatenation + sort scratch for the merge phase (reused).
    merge_scratch: Vec<u32>,
    /// Per-shard order-preserving compaction buffers of the parallel
    /// `is_current` revalidation sweep (reused).
    reval_bufs: Vec<Vec<(DenseHandle, NodeId)>>,
    /// Per-shard surviving-prefix counts of the same sweep (reused).
    reval_counts: Vec<usize>,
    last_direction: FrontierDirection,
}

impl ParallelFrontier {
    fn wrap(process: FloodingProcess, threads: usize) -> Self {
        let threads = if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        };
        ParallelFrontier {
            process,
            threads: threads.max(1),
            sequential_cutoff: PARALLEL_FLOODING_CUTOFF,
            frozen: Vec::new(),
            shard_bufs: Vec::new(),
            merge_scratch: Vec::new(),
            reval_bufs: Vec::new(),
            reval_counts: Vec::new(),
            last_direction: FrontierDirection::Sequential,
        }
    }

    /// Starts a parallel flooding process from an alive source node with a
    /// thread budget (`0` = one shard per pool thread). Returns `None` if
    /// `source` is not alive in `model`.
    pub fn from_source<M: DynamicNetwork + ?Sized>(
        model: &M,
        source: NodeId,
        threads: usize,
    ) -> Option<Self> {
        FloodingProcess::from_source(model, source).map(|p| Self::wrap(p, threads))
    }

    /// Resolves a [`FloodingSource`] (possibly advancing the model to the
    /// next join) and starts the engine from it.
    pub fn start<M: DynamicNetwork + ?Sized>(
        model: &mut M,
        source: FloodingSource,
        threads: usize,
    ) -> Self {
        Self::wrap(FloodingProcess::start(model, source), threads)
    }

    /// Overrides the sequential-fallback population cutoff (default
    /// [`PARALLEL_FLOODING_CUTOFF`]); `0` forces the sharded path at any
    /// size, which the determinism tests use.
    #[must_use]
    pub fn with_sequential_cutoff(mut self, cutoff: usize) -> Self {
        self.sequential_cutoff = cutoff;
        self
    }

    /// The configured thread budget (also the shard count).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Expansion strategy of the most recent round.
    #[must_use]
    pub fn last_direction(&self) -> FrontierDirection {
        self.last_direction
    }

    /// The source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.process.source()
    }

    /// Model time at which the source was informed.
    #[must_use]
    pub fn start_time(&self) -> f64 {
        self.process.start_time()
    }

    /// The currently informed (alive) nodes, as a set of identifiers (rebuilt
    /// on every call; prefer [`Self::informed_count`] in measurement loops).
    #[must_use]
    pub fn informed(&self) -> HashSet<NodeId> {
        self.process.informed()
    }

    /// Number of currently informed nodes.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.process.informed_count()
    }

    /// Largest informed-set size observed so far.
    #[must_use]
    pub fn peak_informed(&self) -> usize {
        self.process.peak_informed()
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.process.rounds()
    }

    /// Whether the broadcast is complete after the last step.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.process.is_complete()
    }

    /// Dense slab indices of the currently informed entries, in entry order.
    pub fn informed_dense(&self) -> impl Iterator<Item = u32> + '_ {
        self.process.informed_dense()
    }

    /// Dense slab indices of the most recent round's newly informed nodes.
    pub fn newly_informed_dense(&self) -> impl Iterator<Item = u32> + '_ {
        self.process.newly_informed_dense()
    }

    /// Revalidates the informed entries against the live graph, sharding the
    /// `is_current` sweep across the thread budget once the entry list is
    /// past the sequential cutoff. Each worker compacts one contiguous chunk
    /// into a private buffer (relative order kept) and counts its survivors
    /// below the `prefix` boundary; the buffers concatenate in chunk order,
    /// so the surviving entry list — and the returned prefix count — are
    /// **identical to the sequential [`FloodingProcess::revalidate`]** at any
    /// thread count. Dropped entries clear their bits through the shared
    /// atomic fetch-AND (no sets race with it: the expansion phase is over).
    ///
    /// This removes the last large sequential term of a late flooding round
    /// at `n = 10^6`: the boundary sweep was already sharded, but every
    /// entry still paid its generation probe on one thread.
    fn revalidate_sharded<M: DynamicNetwork + ?Sized>(
        &mut self,
        model: &M,
        prefix: usize,
    ) -> usize {
        let graph = model.graph();
        let ParallelFrontier {
            process,
            threads,
            reval_bufs,
            reval_counts,
            ..
        } = self;
        let len = process.informed.entries.len();
        if len == 0 {
            return 0;
        }
        let shards = (*threads).min(len);
        let chunk = len.div_ceil(shards);
        let shard_count = len.div_ceil(chunk);
        if reval_bufs.len() < shard_count {
            reval_bufs.resize_with(shard_count, Vec::new);
        }
        reval_counts.clear();
        reval_counts.resize(shard_count, 0);
        {
            let entries = &process.informed.entries;
            let bits = &process.informed.bits;
            rayon::scope(|s| {
                for (i, ((slice, buf), count)) in entries
                    .chunks(chunk)
                    .zip(reval_bufs.iter_mut())
                    .zip(reval_counts.iter_mut())
                    .enumerate()
                {
                    let offset = i * chunk;
                    s.spawn(move |_| {
                        buf.clear();
                        for (j, &(handle, id)) in slice.iter().enumerate() {
                            if graph.is_current(handle) {
                                if offset + j < prefix {
                                    *count += 1;
                                }
                                buf.push((handle, id));
                            } else {
                                bits.clear_shared(handle.index);
                            }
                        }
                    });
                }
            });
        }
        let entries = &mut process.informed.entries;
        entries.clear();
        for buf in &reval_bufs[..shard_count] {
            entries.extend_from_slice(buf);
        }
        reval_counts.iter().sum()
    }

    /// Dispatches between the sharded and the sequential revalidation sweep
    /// (both produce identical results; the choice is wall-clock only).
    fn revalidate_engine<M: DynamicNetwork + ?Sized>(&mut self, model: &M, prefix: usize) -> usize {
        if self.threads > 1 && self.process.informed.entries.len() > self.sequential_cutoff {
            self.revalidate_sharded(model, prefix)
        } else {
            self.process.revalidate(model, prefix)
        }
    }

    /// Executes one flooding round with the sharded engine. Semantically
    /// identical to [`FloodingProcess::step`].
    pub fn step<M: DynamicNetwork + ?Sized>(&mut self, model: &mut M) -> RoundStats {
        self.revalidate_engine(model, 0);
        let prev_len = self.process.informed.entries.len();
        {
            let graph = model.graph();
            self.process.informed.ensure_capacity(graph.slab_len());
            let alive = graph.len();
            // Size is the only fallback criterion: with a one-thread budget
            // the fork-join runs inline (one shard, no worker threads), and
            // the push→pull direction switch is exactly as profitable — it is
            // an algorithmic win, not a parallelism win.
            if alive <= self.sequential_cutoff {
                self.last_direction = FrontierDirection::Sequential;
                self.process.expand_sequential(graph, prev_len);
            } else {
                let pull = pull_is_cheaper(prev_len, alive, model.degree_parameter());
                self.last_direction = if pull {
                    FrontierDirection::Pull
                } else {
                    FrontierDirection::Push
                };
                self.expand_parallel(graph, prev_len, pull);
            }
        }
        let summary = model.advance_time_unit();
        let surviving_prev = self.revalidate_engine(model, prev_len);
        self.process
            .finish_round_with(model, &summary, surviving_prev)
    }

    /// The sharded boundary sweep (see the type docs for the push/pull
    /// mechanics). Only touches the graph read-only; all mutation goes
    /// through the atomic bitset and the post-join merge.
    fn expand_parallel(&mut self, graph: &DynamicGraph, prev_len: usize, pull: bool) {
        let informed = &self.process.informed;
        // Only pull reads the frozen pre-round snapshot (push dedups against
        // the live bits); skipping the O(slab_len/64) copy keeps the small
        // early push rounds cheap.
        if pull {
            informed.bits.snapshot_into(&mut self.frozen);
        }
        let frozen: &[u64] = &self.frozen;
        let bits = &informed.bits;
        let entries = &informed.entries[..prev_len];
        let tagged = graph.tags_enabled();

        if self.shard_bufs.len() < self.threads {
            self.shard_bufs.resize_with(self.threads, Vec::new);
        }
        for buf in &mut self.shard_bufs {
            buf.clear();
        }

        rayon::scope(|s| {
            if pull {
                for (range, buf) in graph
                    .par_alive_ranges(self.threads)
                    .zip(self.shard_bufs.iter_mut())
                {
                    s.spawn(move |_| {
                        for idx in range {
                            if frozen_test(frozen, idx) {
                                continue; // already informed before this round
                            }
                            // Vacant cells yield no neighbours and fall through.
                            for nb in graph.neighbor_indices_at(idx) {
                                // A silent neighbour is informed but never a
                                // source — keep scanning for a forwarding one.
                                if frozen_test(frozen, nb)
                                    && (!tagged || graph.tag_at(nb) & TAG_NO_FORWARD == 0)
                                {
                                    if bits.set_shared(idx) {
                                        buf.push(idx);
                                    }
                                    break;
                                }
                            }
                        }
                    });
                }
            } else {
                let chunk = prev_len.div_ceil(self.threads).max(1);
                for (slice, buf) in entries.chunks(chunk).zip(self.shard_bufs.iter_mut()) {
                    s.spawn(move |_| {
                        for &(handle, _) in slice {
                            if tagged && graph.tag_at(handle.index) & TAG_NO_FORWARD != 0 {
                                continue; // informed but silent: never a source
                            }
                            for nb in graph.neighbor_indices_at(handle.index) {
                                // The relaxed pre-test skips already-informed
                                // cells cheaply; the fetch-OR arbitrates races
                                // on genuinely new ones.
                                if !bits.test(nb) && bits.set_shared(nb) {
                                    buf.push(nb);
                                }
                            }
                        }
                    });
                }
            }
        });

        // Merge: every newly set bit was claimed by exactly one worker, so the
        // buffers concatenate without duplicates; sorting removes the only
        // scheduling-dependent artefact (which buffer a boundary cell landed
        // in), keeping the entry list identical at any thread count.
        self.merge_scratch.clear();
        for buf in &self.shard_bufs {
            self.merge_scratch.extend_from_slice(buf);
        }
        self.merge_scratch.sort_unstable();
        for &idx in &self.merge_scratch {
            let handle = graph
                .handle_at(idx)
                .expect("newly informed cells are alive");
            let id = graph.id_at(idx).expect("newly informed cells are alive");
            self.process.informed.entries.push((handle, id));
        }
    }
}

/// The shared run-to-termination loop behind [`run_flooding`] and
/// [`run_flooding_parallel`].
fn run_flooding_loop<M: DynamicNetwork + ?Sized>(
    model: &mut M,
    config: &FloodingConfig,
    source: NodeId,
    start_time: f64,
    mut step_fn: impl FnMut(&mut M) -> RoundStats,
) -> FloodingRecord {
    let d = model.degree_parameter();
    let mut rounds = Vec::new();
    let mut peak_informed = 1usize;

    let outcome = loop {
        let stats = {
            let _sweep = tracing::span("sweep");
            step_fn(model)
        };
        let fraction = stats.informed_fraction();
        let informed = stats.informed;
        let round = stats.round;
        let complete = stats.complete;
        peak_informed = peak_informed.max(informed);
        rounds.push(stats);

        if config.stop_when_complete && complete {
            break FloodingOutcome::Completed { rounds: round };
        }
        if let Some(target) = config.target_fraction {
            if fraction >= target {
                break FloodingOutcome::ReachedTarget {
                    rounds: round,
                    fraction,
                };
            }
        }
        if informed == 0 {
            break FloodingOutcome::DiedOut {
                rounds: round,
                peak_informed,
            };
        }
        if round >= config.max_rounds {
            // Distinguish "never took off" (Theorem 3.7's failure mode) from
            // "still spreading when the cap was hit".
            if peak_informed <= d + 1 {
                break FloodingOutcome::DiedOut {
                    rounds: round,
                    peak_informed,
                };
            }
            break FloodingOutcome::RoundLimit { fraction };
        }
    };

    FloodingRecord {
        source,
        start_time,
        rounds,
        outcome,
    }
}

/// Runs a flooding process to termination according to `config` and returns the
/// full record.
///
/// # Example
///
/// ```
/// use churn_core::{EdgePolicy, StreamingConfig, StreamingModel, DynamicNetwork};
/// use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
///
/// # fn main() -> Result<(), churn_core::ModelError> {
/// let mut model = StreamingModel::new(
///     StreamingConfig::new(128, 6).edge_policy(EdgePolicy::Regenerate).seed(3),
/// )?;
/// model.warm_up();
/// let record = run_flooding(&mut model, FloodingSource::NextToJoin, &FloodingConfig::default());
/// assert!(record.final_fraction() > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn run_flooding<M: DynamicNetwork + ?Sized>(
    model: &mut M,
    source: FloodingSource,
    config: &FloodingConfig,
) -> FloodingRecord {
    let mut process = FloodingProcess::start(model, source);
    let source_id = process.source();
    let start_time = process.start_time();
    run_flooding_loop(model, config, source_id, start_time, |m| process.step(m))
}

/// Like [`run_flooding`], but drives the sharded [`ParallelFrontier`] engine
/// with the given thread budget (`0` = one shard per pool thread). The
/// informed set per round — and with it the whole record — is identical to
/// [`run_flooding`]'s at any thread count; only the wall-clock cost differs.
pub fn run_flooding_parallel<M: DynamicNetwork + ?Sized>(
    model: &mut M,
    source: FloodingSource,
    config: &FloodingConfig,
    threads: usize,
) -> FloodingRecord {
    let mut engine = ParallelFrontier::start(model, source, threads);
    let source_id = engine.source();
    let start_time = engine.start_time();
    run_flooding_loop(model, config, source_id, start_time, |m| engine.step(m))
}

/// Like [`run_flooding_parallel`], with the graph's [`GraphDelta`] change
/// feed wired in: recording is (re)started before the run, and after every
/// round `observer(model, delta, engine)` receives the round's drained churn
/// window plus the engine (whose
/// [`ParallelFrontier::newly_informed_dense`] lists the round's newly
/// informed cells). One initial call — empty-or-source-selection window, the
/// source already informed — precedes the first round, so incremental
/// overlap trackers (`churn-observe`'s `InformedOverlap`) can seed
/// themselves. Recording is disabled again on return.
///
/// The flooding trajectory is identical to [`run_flooding_parallel`]'s —
/// observation reads, never steers.
///
/// [`GraphDelta`]: churn_graph::GraphDelta
pub fn run_flooding_parallel_observed<M, F>(
    model: &mut M,
    source: FloodingSource,
    config: &FloodingConfig,
    threads: usize,
    mut observer: F,
) -> FloodingRecord
where
    M: DynamicNetwork + ?Sized,
    F: FnMut(&M, &churn_graph::GraphDelta, &ParallelFrontier),
{
    // Restart recording so a stale pre-run window (e.g. a warm-up performed
    // with recording enabled) cannot leak into the first observation.
    model.graph_mut().set_delta_recording(false);
    model.graph_mut().set_delta_recording(true);
    let mut engine = ParallelFrontier::start(model, source, threads);
    let source_id = engine.source();
    let start_time = engine.start_time();
    let mut delta = churn_graph::GraphDelta::new();
    // Source selection may have advanced the model (FloodingSource::NextToJoin
    // waits for a join); hand that window to the observer before round 1.
    model.graph_mut().take_delta_into(&mut delta);
    observer(&*model, &delta, &engine);
    let record = run_flooding_loop(model, config, source_id, start_time, |m| {
        let stats = engine.step(m);
        m.graph_mut().take_delta_into(&mut delta);
        observer(&*m, &delta, &engine);
        stats
    });
    model.graph_mut().set_delta_recording(false);
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgePolicy, PoissonConfig, PoissonModel, StreamingConfig, StreamingModel};

    fn sdgr(n: usize, d: usize, seed: u64) -> StreamingModel {
        let mut m = StreamingModel::new(
            StreamingConfig::new(n, d)
                .edge_policy(EdgePolicy::Regenerate)
                .seed(seed),
        )
        .unwrap();
        m.warm_up();
        m
    }

    fn sdg(n: usize, d: usize, seed: u64) -> StreamingModel {
        let mut m = StreamingModel::new(StreamingConfig::new(n, d).seed(seed)).unwrap();
        m.warm_up();
        m
    }

    #[test]
    fn flooding_on_sdgr_completes_quickly() {
        // Theorem 3.16: SDGR flooding completes in O(log n) rounds w.h.p.
        let mut model = sdgr(256, 8, 1);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "outcome: {:?}",
            record.outcome
        );
        let rounds = record.outcome.rounds().unwrap();
        assert!(
            rounds <= 40,
            "completion in {rounds} rounds is far beyond O(log 256)"
        );
        assert!(record.final_fraction() > 0.99);
    }

    #[test]
    fn flooding_on_sdg_reaches_most_nodes_with_large_d() {
        // Theorem 3.8 (scaled down): with a healthy d, flooding informs a large
        // constant fraction of an SDG network within O(log n) rounds.
        let mut model = sdg(512, 12, 2);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(60).target_fraction(0.8),
        );
        assert!(
            record.final_fraction() >= 0.8 || record.outcome.is_complete(),
            "informed only {:.2} of the nodes: {:?}",
            record.final_fraction(),
            record.outcome
        );
    }

    #[test]
    fn flooding_with_d_1_often_dies_out() {
        // Theorem 3.7: with constant (tiny) d, flooding fails with constant
        // probability. With d = 1 the source's only request frequently lands on a
        // node with no other connections. We run several seeds and require at
        // least one die-out, which is overwhelmingly likely.
        let mut died = 0;
        for seed in 0..12 {
            let mut model = sdg(128, 1, seed);
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::with_max_rounds(200),
            );
            if record.outcome.is_died_out() {
                died += 1;
            }
        }
        assert!(
            died > 0,
            "at least one of 12 runs with d = 1 should die out"
        );
    }

    #[test]
    fn flooding_on_pdgr_completes() {
        // Theorem 4.20: PDGR flooding completes in O(log n) rounds w.h.p.
        let mut model = PoissonModel::new(
            PoissonConfig::with_expected_size(256, 10)
                .edge_policy(EdgePolicy::Regenerate)
                .seed(3),
        )
        .unwrap();
        model.warm_up();
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "PDGR flooding should complete: {:?}",
            record.outcome
        );
        assert!(record.outcome.rounds().unwrap() <= 60);
    }

    #[test]
    fn informed_set_grows_monotonically_in_sdgr_until_completion() {
        let mut model = sdgr(128, 6, 4);
        let mut process = FloodingProcess::start(&mut model, FloodingSource::NextToJoin);
        let mut last = 1usize;
        for _ in 0..40 {
            let stats = process.step(&mut model);
            // In SDGR at most one informed node dies per round while the boundary
            // typically adds many; allow small dips but require overall growth.
            assert!(stats.informed + 1 >= last);
            last = stats.informed;
            if stats.complete {
                break;
            }
        }
        assert!(process.is_complete());
    }

    #[test]
    fn external_churn_between_steps_does_not_corrupt_informed_set() {
        // The caller is allowed to advance the model outside step(). Any
        // informed node that dies in between — including one whose slab cell
        // is recycled by a newborn — must silently drop out instead of the
        // newborn's neighbourhood being treated as informed.
        let mut model = sdgr(64, 4, 21);
        let source = model.alive_ids()[5];
        let mut process = FloodingProcess::from_source(&model, source).unwrap();
        // Churn the whole population over: every node alive at start (the
        // source included) dies, and every slab cell is recycled.
        for _ in 0..(2 * 64) {
            model.advance_time_unit();
        }
        assert!(!model.contains(source));
        let stats = process.step(&mut model);
        // The stale source entry must not seed the newborn occupying its
        // cell: the informed set collapses to empty (nobody was informed).
        assert_eq!(stats.informed, 0, "stale cell must not re-seed flooding");
        assert_eq!(process.informed_count(), 0);
        assert!(process.informed().is_empty());
    }

    #[test]
    fn from_source_rejects_dead_nodes() {
        let model = sdgr(64, 4, 5);
        assert!(FloodingProcess::from_source(&model, NodeId::new(u64::MAX)).is_none());
        let alive = model.alive_ids()[0];
        let process = FloodingProcess::from_source(&model, alive).unwrap();
        assert_eq!(process.informed_count(), 1);
        assert_eq!(process.source(), alive);
        assert_eq!(process.rounds(), 0);
        assert!(!process.is_complete());
    }

    #[test]
    fn source_newest_uses_newest_alive_node() {
        let mut model = sdgr(64, 4, 6);
        let newest = model.newest_node().unwrap();
        let process = FloodingProcess::start(&mut model, FloodingSource::Newest);
        assert_eq!(process.source(), newest);
    }

    #[test]
    fn source_specific_node_is_respected_when_alive() {
        let mut model = sdgr(64, 4, 7);
        let target = model.alive_ids()[10];
        let process = FloodingProcess::start(&mut model, FloodingSource::Node(target));
        assert_eq!(process.source(), target);
        // A dead node falls back to the next joiner.
        let process =
            FloodingProcess::start(&mut model, FloodingSource::Node(NodeId::new(u64::MAX)));
        assert!(model.contains(process.source()));
    }

    #[test]
    fn record_accessors_are_consistent() {
        let mut model = sdgr(128, 6, 8);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert_eq!(record.rounds_elapsed(), record.rounds.len() as u64);
        assert!(record.peak_informed() >= 1);
        assert!(record.rounds_to_fraction(0.5).is_some());
        assert!(record.rounds_to_fraction(0.5) <= record.rounds_to_fraction(0.9));
        // Round stats are monotone in round index and time.
        for w in record.rounds.windows(2) {
            assert_eq!(w[1].round, w[0].round + 1);
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn target_fraction_stops_early() {
        let mut model = sdgr(256, 8, 9);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig {
                max_rounds: 100,
                target_fraction: Some(0.3),
                stop_when_complete: false,
            },
        );
        match record.outcome {
            FloodingOutcome::ReachedTarget { fraction, .. } => assert!(fraction >= 0.3),
            other => panic!("expected ReachedTarget, got {other:?}"),
        }
    }

    #[test]
    fn round_limit_outcome_reports_fraction() {
        let mut model = sdg(256, 8, 10);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig {
                max_rounds: 3,
                target_fraction: None,
                stop_when_complete: true,
            },
        );
        // After only 3 rounds the outcome is either an early die-out or a round
        // limit with a small fraction.
        match record.outcome {
            FloodingOutcome::RoundLimit { fraction } => assert!(fraction < 1.0),
            FloodingOutcome::DiedOut { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(record.rounds_elapsed(), 3);
    }

    #[test]
    fn no_forward_tags_keep_engines_identical_and_split_honest_counts() {
        let mut seq_model = sdgr(512, 8, 21);
        let mut par_model = sdgr(512, 8, 21);
        let mut seq = FloodingProcess::start(&mut seq_model, FloodingSource::NextToJoin);
        let mut par = ParallelFrontier::start(&mut par_model, FloodingSource::NextToJoin, 4)
            .with_sequential_cutoff(0);
        let source = seq.source();
        assert_eq!(source, par.source());

        // Untagged graph: the honest fields mirror the global ones.
        let untouched = seq.step(&mut seq_model);
        assert_eq!(untouched, par.step(&mut par_model));
        assert_eq!(untouched.informed_honest, untouched.informed);
        assert_eq!(untouched.alive_honest, untouched.alive);
        assert_eq!(untouched.honest_complete, untouched.complete);

        // Tag every third member (sparing the source) silent-Byzantine in
        // both models identically.
        let tag = TAG_BYZANTINE | TAG_NO_FORWARD;
        for model in [&mut seq_model, &mut par_model] {
            let members: Vec<u32> = model.graph().member_indices().to_vec();
            let source_idx = model.graph().dense_index_of(source);
            for idx in members.into_iter().step_by(3) {
                if Some(idx) != source_idx {
                    model.graph_mut().set_tag_at(idx, tag).unwrap();
                }
            }
        }

        for _ in 0..40 {
            let seq_stats = seq.step(&mut seq_model);
            let par_stats = par.step(&mut par_model);
            assert_eq!(seq_stats, par_stats, "engines diverge under tags");
            assert_eq!(seq.informed(), par.informed());
            // The honest split is consistent with a direct recount.
            let graph = seq_model.graph();
            let honest_recount = seq
                .informed_dense()
                .filter(|&idx| graph.tag_at(idx) == 0)
                .count();
            assert_eq!(seq_stats.informed_honest, honest_recount);
            assert_eq!(
                seq_stats.alive_honest,
                seq_stats.alive - graph.tagged_member_count()
            );
            assert!(seq_stats.informed_honest <= seq_stats.informed);
            if seq_stats.complete {
                assert!(
                    seq_stats.honest_complete,
                    "global completion implies honest completion"
                );
                break;
            }
        }
        assert!(seq.is_complete(), "silent minority only delays flooding");
    }

    #[test]
    fn silent_nodes_receive_but_never_forward() {
        let mut model = sdgr(128, 4, 7);
        let mut process = FloodingProcess::start(&mut model, FloodingSource::NextToJoin);
        let source = process.source();
        let source_idx = model.graph().dense_index_of(source).unwrap();
        // Everyone except the source is silent: only the source ever forwards.
        let members: Vec<u32> = model.graph().member_indices().to_vec();
        for idx in members {
            if idx != source_idx {
                model
                    .graph_mut()
                    .set_tag_at(idx, TAG_BYZANTINE | TAG_NO_FORWARD)
                    .unwrap();
            }
        }
        let expected: HashSet<NodeId> = model
            .graph()
            .neighbor_indices_at(source_idx)
            .map(|nb| model.graph().id_at(nb).unwrap())
            .chain(std::iter::once(source))
            .collect();
        let stats = process.step(&mut model);
        assert!(
            process.informed().is_subset(&expected),
            "silent nodes must not spread the broadcast"
        );
        assert!(
            stats.informed > stats.informed_honest,
            "tagged receivers are informed but not honest-informed"
        );
    }

    #[test]
    fn round_stats_fraction_handles_empty_network() {
        let stats = RoundStats {
            round: 1,
            time: 1.0,
            informed: 0,
            alive: 0,
            newly_informed: 0,
            complete: false,
            informed_honest: 0,
            alive_honest: 0,
            honest_complete: false,
        };
        assert_eq!(stats.informed_fraction(), 0.0);
        assert_eq!(stats.honest_fraction(), 0.0);
    }

    #[test]
    fn atomic_bitset_exclusive_and_shared_paths_agree() {
        let mut set = AtomicBitset::with_bit_capacity(200);
        assert_eq!(set.word_count(), 4);
        assert!(set.set(3) && !set.set(3));
        assert!(set.test(3) && !set.test(4));
        assert!(set.set_shared(130), "first shared set claims the bit");
        assert!(!set.set_shared(130), "second shared set loses the claim");
        assert!(set.test(130));
        set.clear(3);
        assert!(!set.test(3));
        assert!(!set.test(100_000), "out of range reads as unset");
        let mut frozen = Vec::new();
        set.snapshot_into(&mut frozen);
        assert!(frozen_test(&frozen, 130) && !frozen_test(&frozen, 3));
        assert!(!frozen_test(&frozen, 100_000));
        let cloned = set.clone();
        assert!(cloned.test(130) && !cloned.test(3));
        // Exclusive set grows on demand; shared set must not need to.
        let mut growing = AtomicBitset::default();
        assert!(growing.set(500));
        assert!(growing.word_count() >= 8);
    }

    #[test]
    fn pull_crossover_scales_with_degree() {
        // d = 8 ⇒ crossover at informed/alive = 1/4.
        assert!(!pull_is_cheaper(249, 1000, 8));
        assert!(pull_is_cheaper(250, 1000, 8));
        // Larger degree pulls the crossover down.
        assert!(pull_is_cheaper(130, 1000, 32));
        // Degenerate degree never divides by zero.
        assert!(pull_is_cheaper(1000, 1000, 0));
    }

    /// Steps the sequential and a parallel engine in lock-step over two
    /// identically seeded models and asserts the per-round stats and informed
    /// sets coincide exactly.
    fn assert_parallel_matches_sequential(threads: usize, n: usize, d: usize, seed: u64) {
        let mut seq_model = sdgr(n, d, seed);
        let mut par_model = sdgr(n, d, seed);
        let mut seq = FloodingProcess::start(&mut seq_model, FloodingSource::NextToJoin);
        let mut par = ParallelFrontier::start(&mut par_model, FloodingSource::NextToJoin, threads)
            .with_sequential_cutoff(0);
        assert_eq!(seq.source(), par.source());
        let mut directions = Vec::new();
        for _ in 0..60 {
            let seq_stats = seq.step(&mut seq_model);
            let par_stats = par.step(&mut par_model);
            directions.push(par.last_direction());
            assert_eq!(seq_stats, par_stats, "threads={threads}");
            assert_eq!(seq.informed(), par.informed(), "threads={threads}");
            if seq_stats.complete {
                break;
            }
        }
        assert!(seq.is_complete() && par.is_complete());
        if threads > 1 {
            assert!(
                directions.contains(&FrontierDirection::Push)
                    && directions.contains(&FrontierDirection::Pull),
                "a complete broadcast must exercise both directions (saw {directions:?})"
            );
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential_at_any_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            assert_parallel_matches_sequential(threads, 512, 8, 21);
        }
    }

    #[test]
    fn parallel_engine_handles_external_churn_between_steps() {
        // Mirror of external_churn_between_steps_does_not_corrupt_informed_set
        // for the sharded engine: stale entries must drop out, not re-seed.
        let mut model = sdgr(64, 4, 21);
        let source = model.alive_ids()[5];
        let mut engine = ParallelFrontier::from_source(&model, source, 4)
            .unwrap()
            .with_sequential_cutoff(0);
        for _ in 0..(2 * 64) {
            model.advance_time_unit();
        }
        assert!(!model.contains(source));
        let stats = engine.step(&mut model);
        assert_eq!(stats.informed, 0, "stale cell must not re-seed flooding");
        assert_eq!(engine.informed_count(), 0);
        assert!(engine.informed().is_empty());
    }

    #[test]
    fn run_flooding_parallel_matches_run_flooding() {
        let mut a = sdgr(300, 6, 5);
        let mut b = sdgr(300, 6, 5);
        let seq = run_flooding(
            &mut a,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        let par = run_flooding_parallel(
            &mut b,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
            4,
        );
        assert_eq!(seq, par, "records must be identical engine-for-engine");
    }

    #[test]
    fn parallel_engine_accessors_and_auto_threads() {
        let mut model = sdgr(64, 4, 9);
        let engine = ParallelFrontier::start(&mut model, FloodingSource::Newest, 0);
        assert_eq!(engine.threads(), rayon::current_num_threads().max(1));
        assert_eq!(engine.rounds(), 0);
        assert_eq!(engine.informed_count(), 1);
        assert_eq!(engine.peak_informed(), 1);
        assert!(!engine.is_complete());
        assert!(engine.start_time() >= 0.0);
        assert_eq!(engine.last_direction(), FrontierDirection::Sequential);
        assert!(ParallelFrontier::from_source(&model, NodeId::new(u64::MAX), 2).is_none());
    }

    #[test]
    fn dense_informed_accessors_track_rounds() {
        let mut model = sdgr(96, 5, 13);
        let mut process = FloodingProcess::start(&mut model, FloodingSource::NextToJoin);
        assert_eq!(process.informed_dense().count(), 1);
        assert_eq!(
            process.newly_informed_dense().count(),
            1,
            "before the first round the source is the newly informed set"
        );
        let stats = process.step(&mut model);
        assert_eq!(process.informed_dense().count(), stats.informed);
        assert_eq!(process.newly_informed_dense().count(), stats.newly_informed);
        // The dense views agree with the identifier view.
        let graph = model.graph();
        let via_dense: HashSet<NodeId> = process
            .informed_dense()
            .map(|idx| graph.id_at(idx).unwrap())
            .collect();
        assert_eq!(via_dense, process.informed());
        // The parallel engine exposes the same accessors.
        let mut par_model = sdgr(96, 5, 13);
        let mut engine = ParallelFrontier::start(&mut par_model, FloodingSource::NextToJoin, 4)
            .with_sequential_cutoff(0);
        let par_stats = engine.step(&mut par_model);
        assert_eq!(par_stats, stats);
        assert_eq!(engine.informed_dense().count(), stats.informed);
        assert_eq!(engine.newly_informed_dense().count(), stats.newly_informed);
    }

    #[test]
    fn shared_clear_matches_exclusive_clear() {
        let mut set = AtomicBitset::with_bit_capacity(256);
        for idx in [1u32, 64, 65, 200] {
            set.set(idx);
        }
        set.clear_shared(64);
        set.clear_shared(200);
        assert!(set.test(1) && set.test(65));
        assert!(!set.test(64) && !set.test(200));
        // Clearing an unset bit is a no-op.
        set.clear_shared(2);
        assert!(!set.test(2) && set.test(1));
    }

    #[test]
    fn outcome_helpers() {
        assert!(FloodingOutcome::Completed { rounds: 3 }.is_complete());
        assert!(!FloodingOutcome::Completed { rounds: 3 }.is_died_out());
        assert_eq!(FloodingOutcome::Completed { rounds: 3 }.rounds(), Some(3));
        assert_eq!(FloodingOutcome::RoundLimit { fraction: 0.5 }.rounds(), None);
        assert!(FloodingOutcome::DiedOut {
            rounds: 5,
            peak_informed: 2
        }
        .is_died_out());
    }

    #[test]
    fn observed_parallel_run_matches_plain_and_feeds_the_observer() {
        let mut plain_model = sdgr(192, 6, 9);
        let plain = run_flooding_parallel(
            &mut plain_model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
            2,
        );
        let mut observed_model = sdgr(192, 6, 9);
        let mut calls = 0u64;
        let mut informed_seen = 0usize;
        let observed = run_flooding_parallel_observed(
            &mut observed_model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
            2,
            |m, delta, engine| {
                if calls == 0 {
                    // The pre-round call: only the source is informed, and the
                    // delta covers at most the source-selection round.
                    assert_eq!(engine.newly_informed_dense().count(), 1);
                } else {
                    // Streaming churn: exactly one birth and one death per
                    // warm round reach the observer through the delta.
                    assert_eq!(delta.births.len(), 1);
                    assert_eq!(delta.deaths.len(), 1);
                }
                informed_seen += engine.newly_informed_dense().count();
                assert_eq!(m.alive_count(), 192);
                calls += 1;
            },
        );
        assert_eq!(
            observed, plain,
            "observation must not change the trajectory"
        );
        assert_eq!(calls, observed.rounds_elapsed() + 1);
        assert!(
            informed_seen >= observed.rounds.last().map_or(0, |r| r.informed),
            "every informed entry is announced exactly once while alive"
        );
        assert!(
            !observed_model.graph().delta_recording(),
            "recording is detached on return"
        );
    }
}
