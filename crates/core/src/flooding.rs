//! The flooding process over dynamic networks (Definitions 3.3, 4.2 and 4.3).
//!
//! Flooding is the diffusion process in which, one message delay after being
//! informed, a node forwards the information to all of its current neighbours.
//! Over a dynamic network this interacts with churn in two ways: newly informed
//! nodes can die before forwarding, and newly born nodes start uninformed.
//!
//! The implementation advances in *message-delay units*: one flooding round is
//! one call to [`DynamicNetwork::advance_time_unit`]. For streaming models this
//! is exactly Definition 3.3. For Poisson models it is the asynchronous process
//! of Definition 4.2 observed at integer times: the set `I_t` at observation
//! time `t` consists of the previously informed survivors plus every node that
//! was, at time `t − 1`, a neighbour of an informed node and is still alive at
//! `t`. (The fully "discretized" process of Definition 4.3 — which additionally
//! requires the connecting edge to persist throughout the interval — is a
//! pessimistic analysis device; the synchronous observation used here is the
//! natural simulation of the process the paper's theorems describe.)

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use churn_graph::NodeId;

use crate::model::DynamicNetwork;
use crate::ChurnSummary;

/// How to pick the node that starts the broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloodingSource {
    /// Advance the model until the next node joins and start from it — the
    /// paper's convention ("the flooding process starting at `t0` from the node
    /// joining the network at round `t0`").
    NextToJoin,
    /// Start from the most recently joined node that is still alive (falls back
    /// to [`FloodingSource::NextToJoin`] if none is known).
    Newest,
    /// Start from a specific alive node (falls back to
    /// [`FloodingSource::NextToJoin`] if it is not alive).
    Node(NodeId),
}

/// Stopping rules and bookkeeping limits for [`run_flooding`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodingConfig {
    /// Hard cap on the number of flooding rounds simulated.
    pub max_rounds: u64,
    /// Optional early-stop: finish as soon as the informed fraction reaches this
    /// value (used by the partial-flooding experiments of Theorems 3.8 / 4.13).
    pub target_fraction: Option<f64>,
    /// Stop as soon as the broadcast is complete (`I_t ⊇ N_{t−1} ∩ N_t`).
    pub stop_when_complete: bool,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            max_rounds: 4_096,
            target_fraction: None,
            stop_when_complete: true,
        }
    }
}

impl FloodingConfig {
    /// Configuration with a specific round cap.
    #[must_use]
    pub fn with_max_rounds(max_rounds: u64) -> Self {
        FloodingConfig {
            max_rounds,
            ..Self::default()
        }
    }

    /// Sets the early-stop target fraction.
    #[must_use]
    pub fn target_fraction(mut self, fraction: f64) -> Self {
        self.target_fraction = Some(fraction);
        self
    }
}

/// Per-round observation of a flooding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Rounds elapsed since the start of the flooding (1 for the first step).
    pub round: u64,
    /// Model time after the step.
    pub time: f64,
    /// Number of informed alive nodes after the step.
    pub informed: usize,
    /// Number of alive nodes after the step.
    pub alive: usize,
    /// Number of nodes informed for the first time in this step (and alive at
    /// its end).
    pub newly_informed: usize,
    /// Whether the broadcast is complete after this step.
    pub complete: bool,
}

impl RoundStats {
    /// Fraction of alive nodes that are informed (0 when the network is empty).
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        if self.alive == 0 {
            0.0
        } else {
            self.informed as f64 / self.alive as f64
        }
    }
}

/// How a flooding run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FloodingOutcome {
    /// The broadcast completed: every node alive at the previous observation and
    /// still alive now is informed.
    Completed {
        /// Rounds needed (the paper's *flooding time*).
        rounds: u64,
    },
    /// The requested target fraction was reached before completion.
    ReachedTarget {
        /// Rounds needed to reach the target.
        rounds: u64,
        /// Informed fraction at that point.
        fraction: f64,
    },
    /// The broadcast died out: the informed set never grew beyond a handful of
    /// nodes (at most `d + 1`, the failure mode of Theorems 3.7 / 4.12) or every
    /// informed node died.
    DiedOut {
        /// Rounds simulated before dying out or hitting the cap.
        rounds: u64,
        /// Largest informed-set size ever observed.
        peak_informed: usize,
    },
    /// The round cap was reached without completing, reaching the target, or
    /// dying out.
    RoundLimit {
        /// Informed fraction when the cap was hit.
        fraction: f64,
    },
}

impl FloodingOutcome {
    /// Returns `true` when the broadcast completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, FloodingOutcome::Completed { .. })
    }

    /// Returns `true` when the broadcast died out.
    #[must_use]
    pub fn is_died_out(&self) -> bool {
        matches!(self, FloodingOutcome::DiedOut { .. })
    }

    /// The number of rounds after which the run ended, when meaningful.
    #[must_use]
    pub fn rounds(&self) -> Option<u64> {
        match self {
            FloodingOutcome::Completed { rounds }
            | FloodingOutcome::ReachedTarget { rounds, .. }
            | FloodingOutcome::DiedOut { rounds, .. } => Some(*rounds),
            FloodingOutcome::RoundLimit { .. } => None,
        }
    }
}

/// Complete record of one flooding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodingRecord {
    /// The source node.
    pub source: NodeId,
    /// Model time at which the source was informed.
    pub start_time: f64,
    /// Per-round observations, in order.
    pub rounds: Vec<RoundStats>,
    /// How the run ended.
    pub outcome: FloodingOutcome,
}

impl FloodingRecord {
    /// Number of rounds simulated.
    #[must_use]
    pub fn rounds_elapsed(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Informed fraction at the end of the run (0 if no round was simulated).
    #[must_use]
    pub fn final_fraction(&self) -> f64 {
        self.rounds
            .last()
            .map_or(0.0, RoundStats::informed_fraction)
    }

    /// Largest informed-set size observed during the run.
    #[must_use]
    pub fn peak_informed(&self) -> usize {
        self.rounds.iter().map(|r| r.informed).max().unwrap_or(0)
    }

    /// First round at which the informed fraction reached `fraction`, if ever.
    #[must_use]
    pub fn rounds_to_fraction(&self, fraction: f64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.informed_fraction() >= fraction)
            .map(|r| r.round)
    }
}

/// The informed set, stored densely: one bit per slab cell of the underlying
/// [`churn_graph::DynamicGraph`], plus the list of informed `(index, id)`
/// pairs. The bitset makes the per-round "is this neighbour already informed?"
/// check a single word probe, and the entry list bounds all per-round work by
/// the informed population instead of the network size.
///
/// Slab cells are recycled across churn, so after every churn interval the
/// entries are revalidated against the live graph (`id_at(idx) == id`); stale
/// entries — dead nodes, or cells reused by newborns — drop out and their bits
/// are cleared. A conventional `HashSet<NodeId>` view exists only at the API
/// boundary ([`FloodingProcess::informed`]).
#[derive(Debug, Clone, Default)]
struct InformedSet {
    bits: Vec<u64>,
    entries: Vec<(u32, NodeId)>,
}

impl InformedSet {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn ensure_capacity(&mut self, slab_len: usize) {
        let words = slab_len.div_ceil(64);
        if self.bits.len() < words {
            self.bits.resize(words, 0);
        }
    }

    #[inline]
    fn test(&self, idx: u32) -> bool {
        let word = (idx / 64) as usize;
        self.bits
            .get(word)
            .is_some_and(|bits| bits & (1u64 << (idx % 64)) != 0)
    }

    /// Sets the bit and records the entry; returns `false` when already set.
    #[inline]
    fn insert(&mut self, idx: u32, id: NodeId) -> bool {
        let word = (idx / 64) as usize;
        let mask = 1u64 << (idx % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.entries.push((idx, id));
        true
    }

    #[inline]
    fn clear_bit(&mut self, idx: u32) {
        let word = (idx / 64) as usize;
        if let Some(bits) = self.bits.get_mut(word) {
            *bits &= !(1u64 << (idx % 64));
        }
    }
}

/// A step-by-step flooding process, for callers that want to interleave their
/// own measurements between rounds. [`run_flooding`] is the batteries-included
/// driver built on top of it.
#[derive(Debug, Clone)]
pub struct FloodingProcess {
    source: NodeId,
    start_time: f64,
    informed: InformedSet,
    neighbor_scratch: Vec<u32>,
    rounds: u64,
    complete: bool,
    peak_informed: usize,
}

impl FloodingProcess {
    /// Starts a flooding process from an alive source node.
    ///
    /// Returns `None` if `source` is not alive in `model`.
    pub fn from_source<M: DynamicNetwork>(model: &M, source: NodeId) -> Option<Self> {
        let source_idx = model.graph().dense_index_of(source)?;
        let mut informed = InformedSet::default();
        informed.ensure_capacity(model.graph().slab_len());
        informed.insert(source_idx, source);
        Some(FloodingProcess {
            source,
            start_time: model.time(),
            informed,
            neighbor_scratch: Vec::new(),
            rounds: 0,
            complete: false,
            peak_informed: 1,
        })
    }

    /// Resolves a [`FloodingSource`] (possibly advancing the model to the next
    /// join) and starts the process from it.
    pub fn start<M: DynamicNetwork>(model: &mut M, source: FloodingSource) -> Self {
        let source_id = match source {
            FloodingSource::Node(id) if model.contains(id) => Some(id),
            FloodingSource::Newest => model.newest_node(),
            _ => None,
        };
        let source_id = source_id.unwrap_or_else(|| loop {
            let summary = model.advance_time_unit();
            if let Some(&id) = summary.births.last() {
                break id;
            }
        });
        Self::from_source(model, source_id).expect("source is alive by construction")
    }

    /// The source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Model time at which the source was informed.
    #[must_use]
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// The currently informed (alive) nodes, as a set of identifiers.
    ///
    /// This is the API-boundary view of the internal bitset and is rebuilt on
    /// every call; prefer [`Self::informed_count`] in measurement loops.
    #[must_use]
    pub fn informed(&self) -> HashSet<NodeId> {
        self.informed.entries.iter().map(|&(_, id)| id).collect()
    }

    /// Number of currently informed nodes.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Largest informed-set size observed so far.
    #[must_use]
    pub fn peak_informed(&self) -> usize {
        self.peak_informed
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether the broadcast is complete (`I_t ⊇ N_{t−1} ∩ N_t` at the last
    /// step).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Drops informed entries whose slab cell no longer holds their node
    /// (death, or cell reuse by a newborn). Returns how many of the first
    /// `prefix` entries survived.
    fn revalidate<M: DynamicNetwork>(&mut self, model: &M, prefix: usize) -> usize {
        let graph = model.graph();
        let mut surviving_prefix = 0usize;
        let mut write = 0usize;
        for read in 0..self.informed.entries.len() {
            let (idx, id) = self.informed.entries[read];
            if graph.id_at(idx) == Some(id) {
                if read < prefix {
                    surviving_prefix += 1;
                }
                self.informed.entries[write] = (idx, id);
                write += 1;
            } else {
                self.informed.clear_bit(idx);
            }
        }
        self.informed.entries.truncate(write);
        surviving_prefix
    }

    /// Executes one flooding round: every neighbour (in the current snapshot) of
    /// an informed node becomes informed one time unit later, the model advances
    /// by that time unit, and informed nodes that died are dropped.
    pub fn step<M: DynamicNetwork>(&mut self, model: &mut M) -> RoundStats {
        // The caller may have churned the model between steps (the process
        // only observes it through this method), so first drop entries whose
        // slab cell was vacated or recycled — otherwise the boundary sweep
        // below would expand a newborn's adjacency as if it were informed.
        self.revalidate(model, 0);

        // Boundary in the current snapshot G_{t-1}: expand the bitset over the
        // dense adjacency. Entries appended during the sweep are the frontier
        // of this round; they are not re-expanded (their bits are set, so the
        // loop over the pre-existing prefix suffices).
        let graph = model.graph();
        self.informed.ensure_capacity(graph.slab_len());
        let prev_len = self.informed.entries.len();
        for i in 0..prev_len {
            let (idx, _) = self.informed.entries[i];
            self.neighbor_scratch.clear();
            graph.neighbors_dense_into(idx, &mut self.neighbor_scratch);
            for j in 0..self.neighbor_scratch.len() {
                let nb = self.neighbor_scratch[j];
                if !self.informed.test(nb) {
                    let nb_id = graph.id_at(nb).expect("adjacency points at alive cells");
                    self.informed.insert(nb, nb_id);
                }
            }
        }

        // One message-delay unit of churn.
        let summary: ChurnSummary = model.advance_time_unit();

        // I_t = (I_{t-1} ∪ ∂out(I_{t-1})) ∩ N_t.
        let surviving_prev = self.revalidate(model, prev_len);
        let newly_informed = self.informed.entries.len() - surviving_prev;
        self.rounds += 1;
        self.peak_informed = self.peak_informed.max(self.informed.len());

        // Completion: every alive node that is not a newcomer of this interval
        // is informed, i.e. I_t ⊇ N_{t-1} ∩ N_t. Newborns are never informed
        // (the boundary sweep preceded their birth), so a counting argument
        // replaces the former full scan over the alive set.
        let alive = model.alive_count();
        let births_alive = summary
            .births
            .iter()
            .filter(|&&id| model.contains(id))
            .count();
        self.complete = self.informed.len() + births_alive == alive;

        RoundStats {
            round: self.rounds,
            time: model.time(),
            informed: self.informed.len(),
            alive,
            newly_informed,
            complete: self.complete,
        }
    }
}

/// Runs a flooding process to termination according to `config` and returns the
/// full record.
///
/// # Example
///
/// ```
/// use churn_core::{EdgePolicy, StreamingConfig, StreamingModel, DynamicNetwork};
/// use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
///
/// # fn main() -> Result<(), churn_core::ModelError> {
/// let mut model = StreamingModel::new(
///     StreamingConfig::new(128, 6).edge_policy(EdgePolicy::Regenerate).seed(3),
/// )?;
/// model.warm_up();
/// let record = run_flooding(&mut model, FloodingSource::NextToJoin, &FloodingConfig::default());
/// assert!(record.final_fraction() > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn run_flooding<M: DynamicNetwork>(
    model: &mut M,
    source: FloodingSource,
    config: &FloodingConfig,
) -> FloodingRecord {
    let mut process = FloodingProcess::start(model, source);
    let source_id = process.source();
    let start_time = process.start_time();
    let d = model.degree_parameter();
    let mut rounds = Vec::new();

    let outcome = loop {
        let stats = process.step(model);
        let fraction = stats.informed_fraction();
        let informed = stats.informed;
        let round = stats.round;
        rounds.push(stats);

        if config.stop_when_complete && process.is_complete() {
            break FloodingOutcome::Completed { rounds: round };
        }
        if let Some(target) = config.target_fraction {
            if fraction >= target {
                break FloodingOutcome::ReachedTarget {
                    rounds: round,
                    fraction,
                };
            }
        }
        if informed == 0 {
            break FloodingOutcome::DiedOut {
                rounds: round,
                peak_informed: process.peak_informed(),
            };
        }
        if round >= config.max_rounds {
            // Distinguish "never took off" (Theorem 3.7's failure mode) from
            // "still spreading when the cap was hit".
            if process.peak_informed() <= d + 1 {
                break FloodingOutcome::DiedOut {
                    rounds: round,
                    peak_informed: process.peak_informed(),
                };
            }
            break FloodingOutcome::RoundLimit { fraction };
        }
    };

    FloodingRecord {
        source: source_id,
        start_time,
        rounds,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgePolicy, PoissonConfig, PoissonModel, StreamingConfig, StreamingModel};

    fn sdgr(n: usize, d: usize, seed: u64) -> StreamingModel {
        let mut m = StreamingModel::new(
            StreamingConfig::new(n, d)
                .edge_policy(EdgePolicy::Regenerate)
                .seed(seed),
        )
        .unwrap();
        m.warm_up();
        m
    }

    fn sdg(n: usize, d: usize, seed: u64) -> StreamingModel {
        let mut m = StreamingModel::new(StreamingConfig::new(n, d).seed(seed)).unwrap();
        m.warm_up();
        m
    }

    #[test]
    fn flooding_on_sdgr_completes_quickly() {
        // Theorem 3.16: SDGR flooding completes in O(log n) rounds w.h.p.
        let mut model = sdgr(256, 8, 1);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "outcome: {:?}",
            record.outcome
        );
        let rounds = record.outcome.rounds().unwrap();
        assert!(
            rounds <= 40,
            "completion in {rounds} rounds is far beyond O(log 256)"
        );
        assert!(record.final_fraction() > 0.99);
    }

    #[test]
    fn flooding_on_sdg_reaches_most_nodes_with_large_d() {
        // Theorem 3.8 (scaled down): with a healthy d, flooding informs a large
        // constant fraction of an SDG network within O(log n) rounds.
        let mut model = sdg(512, 12, 2);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(60).target_fraction(0.8),
        );
        assert!(
            record.final_fraction() >= 0.8 || record.outcome.is_complete(),
            "informed only {:.2} of the nodes: {:?}",
            record.final_fraction(),
            record.outcome
        );
    }

    #[test]
    fn flooding_with_d_1_often_dies_out() {
        // Theorem 3.7: with constant (tiny) d, flooding fails with constant
        // probability. With d = 1 the source's only request frequently lands on a
        // node with no other connections. We run several seeds and require at
        // least one die-out, which is overwhelmingly likely.
        let mut died = 0;
        for seed in 0..12 {
            let mut model = sdg(128, 1, seed);
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::with_max_rounds(200),
            );
            if record.outcome.is_died_out() {
                died += 1;
            }
        }
        assert!(
            died > 0,
            "at least one of 12 runs with d = 1 should die out"
        );
    }

    #[test]
    fn flooding_on_pdgr_completes() {
        // Theorem 4.20: PDGR flooding completes in O(log n) rounds w.h.p.
        let mut model = PoissonModel::new(
            PoissonConfig::with_expected_size(256, 10)
                .edge_policy(EdgePolicy::Regenerate)
                .seed(3),
        )
        .unwrap();
        model.warm_up();
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "PDGR flooding should complete: {:?}",
            record.outcome
        );
        assert!(record.outcome.rounds().unwrap() <= 60);
    }

    #[test]
    fn informed_set_grows_monotonically_in_sdgr_until_completion() {
        let mut model = sdgr(128, 6, 4);
        let mut process = FloodingProcess::start(&mut model, FloodingSource::NextToJoin);
        let mut last = 1usize;
        for _ in 0..40 {
            let stats = process.step(&mut model);
            // In SDGR at most one informed node dies per round while the boundary
            // typically adds many; allow small dips but require overall growth.
            assert!(stats.informed + 1 >= last);
            last = stats.informed;
            if stats.complete {
                break;
            }
        }
        assert!(process.is_complete());
    }

    #[test]
    fn external_churn_between_steps_does_not_corrupt_informed_set() {
        // The caller is allowed to advance the model outside step(). Any
        // informed node that dies in between — including one whose slab cell
        // is recycled by a newborn — must silently drop out instead of the
        // newborn's neighbourhood being treated as informed.
        let mut model = sdgr(64, 4, 21);
        let source = model.alive_ids()[5];
        let mut process = FloodingProcess::from_source(&model, source).unwrap();
        // Churn the whole population over: every node alive at start (the
        // source included) dies, and every slab cell is recycled.
        for _ in 0..(2 * 64) {
            model.advance_time_unit();
        }
        assert!(!model.contains(source));
        let stats = process.step(&mut model);
        // The stale source entry must not seed the newborn occupying its
        // cell: the informed set collapses to empty (nobody was informed).
        assert_eq!(stats.informed, 0, "stale cell must not re-seed flooding");
        assert_eq!(process.informed_count(), 0);
        assert!(process.informed().is_empty());
    }

    #[test]
    fn from_source_rejects_dead_nodes() {
        let model = sdgr(64, 4, 5);
        assert!(FloodingProcess::from_source(&model, NodeId::new(u64::MAX)).is_none());
        let alive = model.alive_ids()[0];
        let process = FloodingProcess::from_source(&model, alive).unwrap();
        assert_eq!(process.informed_count(), 1);
        assert_eq!(process.source(), alive);
        assert_eq!(process.rounds(), 0);
        assert!(!process.is_complete());
    }

    #[test]
    fn source_newest_uses_newest_alive_node() {
        let mut model = sdgr(64, 4, 6);
        let newest = model.newest_node().unwrap();
        let process = FloodingProcess::start(&mut model, FloodingSource::Newest);
        assert_eq!(process.source(), newest);
    }

    #[test]
    fn source_specific_node_is_respected_when_alive() {
        let mut model = sdgr(64, 4, 7);
        let target = model.alive_ids()[10];
        let process = FloodingProcess::start(&mut model, FloodingSource::Node(target));
        assert_eq!(process.source(), target);
        // A dead node falls back to the next joiner.
        let process =
            FloodingProcess::start(&mut model, FloodingSource::Node(NodeId::new(u64::MAX)));
        assert!(model.contains(process.source()));
    }

    #[test]
    fn record_accessors_are_consistent() {
        let mut model = sdgr(128, 6, 8);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert_eq!(record.rounds_elapsed(), record.rounds.len() as u64);
        assert!(record.peak_informed() >= 1);
        assert!(record.rounds_to_fraction(0.5).is_some());
        assert!(record.rounds_to_fraction(0.5) <= record.rounds_to_fraction(0.9));
        // Round stats are monotone in round index and time.
        for w in record.rounds.windows(2) {
            assert_eq!(w[1].round, w[0].round + 1);
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn target_fraction_stops_early() {
        let mut model = sdgr(256, 8, 9);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig {
                max_rounds: 100,
                target_fraction: Some(0.3),
                stop_when_complete: false,
            },
        );
        match record.outcome {
            FloodingOutcome::ReachedTarget { fraction, .. } => assert!(fraction >= 0.3),
            other => panic!("expected ReachedTarget, got {other:?}"),
        }
    }

    #[test]
    fn round_limit_outcome_reports_fraction() {
        let mut model = sdg(256, 8, 10);
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig {
                max_rounds: 3,
                target_fraction: None,
                stop_when_complete: true,
            },
        );
        // After only 3 rounds the outcome is either an early die-out or a round
        // limit with a small fraction.
        match record.outcome {
            FloodingOutcome::RoundLimit { fraction } => assert!(fraction < 1.0),
            FloodingOutcome::DiedOut { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(record.rounds_elapsed(), 3);
    }

    #[test]
    fn round_stats_fraction_handles_empty_network() {
        let stats = RoundStats {
            round: 1,
            time: 1.0,
            informed: 0,
            alive: 0,
            newly_informed: 0,
            complete: false,
        };
        assert_eq!(stats.informed_fraction(), 0.0);
    }

    #[test]
    fn outcome_helpers() {
        assert!(FloodingOutcome::Completed { rounds: 3 }.is_complete());
        assert!(!FloodingOutcome::Completed { rounds: 3 }.is_died_out());
        assert_eq!(FloodingOutcome::Completed { rounds: 3 }.rounds(), Some(3));
        assert_eq!(FloodingOutcome::RoundLimit { fraction: 0.5 }.rounds(), None);
        assert!(FloodingOutcome::DiedOut {
            rounds: 5,
            peak_informed: 2
        }
        .is_died_out());
    }
}
