//! Isolated-node census and lifetime-isolation measurement (Lemmas 3.5 and 4.10).
//!
//! In the models *without* edge regeneration a node becomes isolated when all of
//! the `d` requests it opened at birth point at nodes that have meanwhile died
//! and no younger node ever picked it. Lemmas 3.5 and 4.10 show that, w.h.p., a
//! constant fraction of the network (at least `n·e^{−2d}/6` in the streaming
//! model, `n·e^{−2d}/18` in the Poisson model) is isolated *and stays isolated
//! for the rest of its lifetime* — which is why flooding cannot complete
//! quickly in SDG/PDG. This module measures both quantities.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use churn_graph::NodeId;

use crate::model::DynamicNetwork;

/// Result of an isolation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationReport {
    /// Number of alive nodes at measurement time.
    pub alive: usize,
    /// Nodes with degree zero at measurement time.
    pub isolated_now: Vec<NodeId>,
    /// Subset of `isolated_now` that stayed isolated until they died (or until
    /// the observation horizon expired while they were still isolated).
    pub lifetime_isolated: Vec<NodeId>,
    /// Time units the follow-up observation ran for.
    pub horizon: u64,
}

impl IsolationReport {
    /// Fraction of alive nodes isolated at measurement time.
    #[must_use]
    pub fn isolated_fraction(&self) -> f64 {
        if self.alive == 0 {
            0.0
        } else {
            self.isolated_now.len() as f64 / self.alive as f64
        }
    }

    /// Fraction of alive nodes that are isolated for the rest of their lifetime.
    #[must_use]
    pub fn lifetime_isolated_fraction(&self) -> f64 {
        if self.alive == 0 {
            0.0
        } else {
            self.lifetime_isolated.len() as f64 / self.alive as f64
        }
    }
}

/// Identifiers of the nodes currently isolated (degree zero) in the model.
#[must_use]
pub fn isolated_now<M: DynamicNetwork>(model: &M) -> Vec<NodeId> {
    let graph = model.graph();
    let mut isolated: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| graph.is_isolated(id).unwrap_or(false))
        .collect();
    isolated.sort_unstable();
    isolated
}

/// A reasonable follow-up horizon for [`lifetime_isolation_report`]: the exact
/// residual lifetime bound `n` for streaming models, `5·n` time units (after
/// which only an `e^{−5}` fraction of the observed nodes can still be alive) for
/// Poisson models.
#[must_use]
pub fn default_isolation_horizon<M: DynamicNetwork>(model: &M) -> u64 {
    let n = model.expected_size() as u64;
    if model.has_streaming_churn() {
        n
    } else {
        5 * n
    }
}

/// Measures isolation now and follows the currently isolated nodes forward in
/// time (on a clone of the model, leaving the original untouched) to determine
/// which of them remain isolated for the rest of their lifetime.
///
/// A node counts as *lifetime isolated* if its degree stays zero from the
/// measurement instant until it dies; nodes still alive (and still isolated)
/// when the horizon expires are also counted, since they have been isolated for
/// the entire observation window.
pub fn lifetime_isolation_report<M: DynamicNetwork + Clone>(
    model: &M,
    horizon: u64,
) -> IsolationReport {
    let isolated = isolated_now(model);
    let alive = model.alive_count();

    let mut future = model.clone();
    // Candidates still alive and never seen with positive degree.
    let mut candidates: HashSet<NodeId> = isolated.iter().copied().collect();
    // Candidates that already died while still isolated.
    let mut confirmed: HashSet<NodeId> = HashSet::new();

    for _ in 0..horizon {
        if candidates.is_empty() {
            break;
        }
        let summary = future.advance_time_unit();
        for dead in &summary.deaths {
            if candidates.remove(dead) {
                confirmed.insert(*dead);
            }
        }
        let graph = future.graph();
        candidates.retain(|&id| graph.is_isolated(id).unwrap_or(false));
    }

    // Whatever survived the horizon while remaining isolated also counts.
    confirmed.extend(candidates);
    let mut lifetime: Vec<NodeId> = confirmed.into_iter().collect();
    lifetime.sort_unstable();

    IsolationReport {
        alive,
        isolated_now: isolated,
        lifetime_isolated: lifetime,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        DynamicNetwork, EdgePolicy, PoissonConfig, PoissonModel, StreamingConfig, StreamingModel,
    };

    #[test]
    fn sdg_has_isolated_nodes_but_sdgr_has_none() {
        // Lemma 3.5 vs. Theorem 3.15: without regeneration a constant fraction of
        // nodes is isolated; with regeneration every node keeps d live out-edges
        // so nobody is isolated.
        let n = 300;
        let d = 2;
        let mut sdg = StreamingModel::new(StreamingConfig::new(n, d).seed(1)).unwrap();
        sdg.warm_up();
        for _ in 0..n {
            sdg.advance_time_unit();
        }
        let isolated = isolated_now(&sdg);
        assert!(
            !isolated.is_empty(),
            "a warm SDG network with d = 2 should contain isolated nodes"
        );

        let mut sdgr = StreamingModel::new(
            StreamingConfig::new(n, d)
                .edge_policy(EdgePolicy::Regenerate)
                .seed(1),
        )
        .unwrap();
        sdgr.warm_up();
        for _ in 0..n {
            sdgr.advance_time_unit();
        }
        assert!(
            isolated_now(&sdgr).is_empty(),
            "SDGR nodes always hold d live out-edges"
        );
    }

    #[test]
    fn lifetime_isolation_is_a_subset_of_current_isolation() {
        let mut model = StreamingModel::new(StreamingConfig::new(200, 2).seed(2)).unwrap();
        model.warm_up();
        for _ in 0..200 {
            model.advance_time_unit();
        }
        let report = lifetime_isolation_report(&model, 200);
        let now: HashSet<NodeId> = report.isolated_now.iter().copied().collect();
        for id in &report.lifetime_isolated {
            assert!(now.contains(id));
        }
        assert!(report.isolated_fraction() >= report.lifetime_isolated_fraction());
        assert!(report.alive == 200);
        assert_eq!(report.horizon, 200);
    }

    #[test]
    fn lifetime_isolation_does_not_mutate_the_original_model() {
        let mut model = StreamingModel::new(StreamingConfig::new(100, 2).seed(3)).unwrap();
        model.warm_up();
        let round_before = model.round();
        let _ = lifetime_isolation_report(&model, 100);
        assert_eq!(model.round(), round_before);
    }

    #[test]
    fn isolated_fraction_grows_as_d_shrinks() {
        // The e^{-2d} scaling of Lemma 3.5: halving d should (greatly) increase
        // the isolated fraction.
        let n = 400;
        let run = |d: usize| {
            let mut m = StreamingModel::new(StreamingConfig::new(n, d).seed(4)).unwrap();
            m.warm_up();
            for _ in 0..n {
                m.advance_time_unit();
            }
            isolated_now(&m).len()
        };
        let isolated_d1 = run(1);
        let isolated_d4 = run(4);
        assert!(
            isolated_d1 > isolated_d4,
            "d = 1 ({isolated_d1} isolated) should isolate more nodes than d = 4 ({isolated_d4})"
        );
    }

    #[test]
    fn pdg_also_exhibits_isolated_nodes() {
        // Lemma 4.10: the Poisson model without regeneration has isolated nodes.
        let mut model =
            PoissonModel::new(PoissonConfig::with_expected_size(300, 2).seed(5)).unwrap();
        model.warm_up();
        let report = lifetime_isolation_report(&model, 50);
        assert!(
            !report.isolated_now.is_empty(),
            "a warm PDG network with d = 2 should contain isolated nodes"
        );
        assert!(report.isolated_fraction() > 0.0);
    }

    #[test]
    fn default_horizon_scales_with_model() {
        let streaming = StreamingModel::new(StreamingConfig::new(100, 2).seed(0)).unwrap();
        assert_eq!(default_isolation_horizon(&streaming), 100);
        let poisson = PoissonModel::new(PoissonConfig::with_expected_size(100, 2).seed(0)).unwrap();
        assert_eq!(default_isolation_horizon(&poisson), 500);
    }

    #[test]
    fn empty_report_fractions_are_zero() {
        let report = IsolationReport {
            alive: 0,
            isolated_now: vec![],
            lifetime_isolated: vec![],
            horizon: 10,
        };
        assert_eq!(report.isolated_fraction(), 0.0);
        assert_eq!(report.lifetime_isolated_fraction(), 0.0);
    }
}
