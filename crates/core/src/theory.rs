//! Closed-form predictions from the paper's theorems and lemmas.
//!
//! These are the quantities the experiment harness prints next to the measured
//! values in `EXPERIMENTS.md`. Each function documents which statement of the
//! paper it comes from. All bounds are asymptotic ("for sufficiently large n",
//! "w.h.p."), so at simulation sizes they predict *shapes and orderings* rather
//! than exact values; the constants are the paper's.

use serde::{Deserialize, Serialize};

/// The vertex-expansion threshold the paper proves for every positive result
/// (Lemmas 3.6, 4.11, Theorems 3.15, 4.16): `h_out ≥ 0.1`.
pub const EXPANSION_THRESHOLD: f64 = 0.1;

/// Lower bound on the fraction of nodes of an SDG snapshot that are isolated for
/// their whole residual lifetime (Lemma 3.5): `e^{−2d}/6`.
#[must_use]
pub fn isolated_fraction_streaming(d: usize) -> f64 {
    (-2.0 * d as f64).exp() / 6.0
}

/// Lower bound on the lifetime-isolated fraction for the Poisson model without
/// regeneration (Lemma 4.10): `e^{−2d}/18`.
#[must_use]
pub fn isolated_fraction_poisson(d: usize) -> f64 {
    (-2.0 * d as f64).exp() / 18.0
}

/// Smallest subset size (as a fraction of `n`) covered by the large-set
/// expansion lemma: `e^{−d/10}` for the streaming model (Lemma 3.6),
/// `e^{−d/20}` for the Poisson model (Lemma 4.11).
#[must_use]
pub fn large_set_min_fraction(d: usize, streaming: bool) -> f64 {
    let scale = if streaming { 10.0 } else { 20.0 };
    (-(d as f64) / scale).exp()
}

/// Fraction of the network that partial flooding reaches in the models without
/// regeneration: `1 − e^{−d/10}` (Theorem 3.8) or `1 − e^{−d/20}`
/// (Theorem 4.13).
#[must_use]
pub fn partial_flooding_fraction(d: usize, streaming: bool) -> f64 {
    1.0 - large_set_min_fraction(d, streaming)
}

/// Probability with which the partial flooding result holds:
/// `1 − 4·e^{−d/100}` for the streaming model (Theorem 3.8),
/// `1 − 2·e^{−d/576}` for the Poisson model (Theorem 4.13).
///
/// For small `d` these expressions are negative, meaning the theorem gives no
/// guarantee at that degree; the value is clamped to `[0, 1]`.
#[must_use]
pub fn partial_flooding_success_probability(d: usize, streaming: bool) -> f64 {
    let p = if streaming {
        1.0 - 4.0 * (-(d as f64) / 100.0).exp()
    } else {
        1.0 - 2.0 * (-(d as f64) / 576.0).exp()
    };
    p.clamp(0.0, 1.0)
}

/// The per-phase multiplicative growth factor of the onion-skin process
/// (Claim 3.10): `d/20`.
#[must_use]
pub fn onion_skin_growth_factor(d: usize) -> f64 {
    d as f64 / 20.0
}

/// Expected degree of a node in a warm SDG/PDG snapshot (Lemma 6.1): exactly `d`.
#[must_use]
pub fn expected_degree(d: usize) -> f64 {
    d as f64
}

/// The band the Poisson population stays in w.h.p. after warm-up (Lemma 4.4):
/// `[0.9·n, 1.1·n]`.
#[must_use]
pub fn poisson_population_band(n: usize) -> (f64, f64) {
    (0.9 * n as f64, 1.1 * n as f64)
}

/// The interval the jump-chain transition probabilities stay in once the
/// population is in the Lemma 4.4 band (Lemma 4.7, equation (3)):
/// both the birth and the death probability lie in `[0.47, 0.53]`.
#[must_use]
pub fn jump_probability_band() -> (f64, f64) {
    (0.47, 0.53)
}

/// Which statement of the paper a degree threshold comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Claim {
    /// Lemma 3.6 — large-set expansion of SDG.
    LargeSetExpansionStreaming,
    /// Lemma 4.11 — large-set expansion of PDG.
    LargeSetExpansionPoisson,
    /// Theorem 3.8 — partial flooding in SDG.
    PartialFloodingStreaming,
    /// Theorem 4.13 — partial flooding in PDG.
    PartialFloodingPoisson,
    /// Theorem 3.15 — full expansion of SDGR.
    ExpansionStreamingRegen,
    /// Theorem 4.16 — full expansion of PDGR.
    ExpansionPoissonRegen,
    /// Theorem 3.16 — logarithmic flooding in SDGR.
    FloodingStreamingRegen,
    /// Theorem 4.20 — logarithmic flooding in PDGR.
    FloodingPoissonRegen,
}

impl Claim {
    /// The smallest degree `d` for which the paper states the claim.
    ///
    /// The proofs are not optimised in the constants; simulations typically show
    /// the qualitative behaviour at much smaller degrees, which is exactly what
    /// the experiments report.
    #[must_use]
    pub fn min_degree(self) -> usize {
        match self {
            Claim::LargeSetExpansionStreaming | Claim::LargeSetExpansionPoisson => 20,
            Claim::PartialFloodingStreaming => 200,
            Claim::PartialFloodingPoisson => 1152,
            Claim::ExpansionStreamingRegen => 14,
            Claim::ExpansionPoissonRegen => 35,
            Claim::FloodingStreamingRegen => 21,
            Claim::FloodingPoissonRegen => 35,
        }
    }

    /// Human-readable reference to the statement in the paper.
    #[must_use]
    pub fn reference(self) -> &'static str {
        match self {
            Claim::LargeSetExpansionStreaming => "Lemma 3.6",
            Claim::LargeSetExpansionPoisson => "Lemma 4.11",
            Claim::PartialFloodingStreaming => "Theorem 3.8",
            Claim::PartialFloodingPoisson => "Theorem 4.13",
            Claim::ExpansionStreamingRegen => "Theorem 3.15",
            Claim::ExpansionPoissonRegen => "Theorem 4.16",
            Claim::FloodingStreamingRegen => "Theorem 3.16",
            Claim::FloodingPoissonRegen => "Theorem 4.20",
        }
    }
}

/// Predicted shape of the flooding time of the regeneration models
/// (Theorems 3.16 and 4.20): `O(log n)`. Returns `c · log₂(n)` for the caller's
/// choice of constant, as a comparison curve for plots.
#[must_use]
pub fn logarithmic_flooding_curve(n: usize, constant: f64) -> f64 {
    constant * (n as f64).log2()
}

/// Predicted shape of the time needed by flooding to *complete* in the models
/// without regeneration (Theorems 3.7 / 4.12): `Ω_d(n)` — linear in `n`, because
/// the lifetime-isolated nodes can only be "informed" by dying and being
/// replaced.
#[must_use]
pub fn linear_completion_curve(n: usize, constant: f64) -> f64 {
    constant * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_fraction_decays_exponentially_in_d() {
        assert!(isolated_fraction_streaming(1) > isolated_fraction_streaming(2));
        assert!(isolated_fraction_streaming(2) > isolated_fraction_streaming(4));
        // Streaming bound is three times the Poisson bound (1/6 vs 1/18).
        for d in 1..6 {
            assert!(
                (isolated_fraction_streaming(d) / isolated_fraction_poisson(d) - 3.0).abs() < 1e-12
            );
        }
        // Concrete value: e^{-2}/6 ≈ 0.02255.
        assert!((isolated_fraction_streaming(1) - 0.022_555).abs() < 1e-4);
    }

    #[test]
    fn partial_flooding_fraction_tends_to_one() {
        assert!(partial_flooding_fraction(10, true) < partial_flooding_fraction(40, true));
        assert!(partial_flooding_fraction(200, true) > 0.999);
        assert!(partial_flooding_fraction(40, false) < partial_flooding_fraction(40, true));
        assert!((partial_flooding_fraction(0, true) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_is_clamped_and_monotone() {
        assert_eq!(partial_flooding_success_probability(1, true), 0.0);
        assert!(partial_flooding_success_probability(200, true) > 0.4);
        assert!(
            partial_flooding_success_probability(400, true)
                > partial_flooding_success_probability(200, true)
        );
        assert!(partial_flooding_success_probability(4000, false) > 0.99);
        assert!(partial_flooding_success_probability(100_000, true) <= 1.0);
    }

    #[test]
    fn thresholds_match_the_paper() {
        assert_eq!(Claim::LargeSetExpansionStreaming.min_degree(), 20);
        assert_eq!(Claim::PartialFloodingStreaming.min_degree(), 200);
        assert_eq!(Claim::PartialFloodingPoisson.min_degree(), 1152);
        assert_eq!(Claim::ExpansionStreamingRegen.min_degree(), 14);
        assert_eq!(Claim::ExpansionPoissonRegen.min_degree(), 35);
        assert_eq!(Claim::FloodingStreamingRegen.min_degree(), 21);
        for claim in [
            Claim::LargeSetExpansionStreaming,
            Claim::FloodingPoissonRegen,
            Claim::PartialFloodingPoisson,
        ] {
            assert!(!claim.reference().is_empty());
        }
    }

    #[test]
    fn curves_scale_as_expected() {
        assert!(logarithmic_flooding_curve(1024, 1.0) > logarithmic_flooding_curve(256, 1.0));
        assert!((logarithmic_flooding_curve(1024, 2.0) - 20.0).abs() < 1e-12);
        assert!((linear_completion_curve(500, 0.1) - 50.0).abs() < 1e-12);
        // The gap between O(log n) and Ω(n) completion is the paper's headline
        // contrast between the models with and without regeneration.
        assert!(linear_completion_curve(4096, 0.01) > logarithmic_flooding_curve(4096, 2.0));
    }

    #[test]
    fn other_constants() {
        assert_eq!(EXPANSION_THRESHOLD, 0.1);
        assert_eq!(expected_degree(7), 7.0);
        assert_eq!(onion_skin_growth_factor(200), 10.0);
        let (lo, hi) = poisson_population_band(1000);
        assert_eq!((lo, hi), (900.0, 1100.0));
        let (plo, phi) = jump_probability_band();
        assert!(plo < 0.5 && phi > 0.5);
        assert!(large_set_min_fraction(20, true) > large_set_min_fraction(40, true));
        assert!((large_set_min_fraction(20, false) - (-1.0f64).exp()).abs() < 1e-12);
    }
}
