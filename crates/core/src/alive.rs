//! Constant-time uniform sampling over the set of alive nodes.

use std::collections::HashMap;

use rand::Rng;

use churn_graph::NodeId;

/// A set of node identifiers supporting O(1) insertion, removal and uniform
/// sampling.
///
/// Both churn processes constantly need "a node chosen uniformly at random among
/// the nodes in the network" (Definitions 3.4 and 4.9) and "a uniformly random
/// alive node dies" (the jump chain of Lemma 4.6). A plain hash set cannot be
/// sampled in O(1); this structure keeps a dense vector alongside a position map
/// to make all three operations constant time.
///
/// # Example
///
/// ```
/// use churn_core::AliveSet;
/// use churn_graph::NodeId;
/// use rand::SeedableRng;
///
/// let mut alive = AliveSet::new();
/// alive.insert(NodeId::new(1));
/// alive.insert(NodeId::new(2));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sampled = alive.sample(&mut rng).unwrap();
/// assert!(alive.contains(sampled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AliveSet {
    members: Vec<NodeId>,
    positions: HashMap<NodeId, usize>,
}

impl AliveSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        AliveSet {
            members: Vec::with_capacity(capacity),
            positions: HashMap::with_capacity(capacity),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` when `id` is a member.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.positions.contains_key(&id)
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        if self.positions.contains_key(&id) {
            return false;
        }
        self.positions.insert(id, self.members.len());
        self.members.push(id);
        true
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.positions.remove(&id) else {
            return false;
        };
        let last = self.members.len() - 1;
        self.members.swap(pos, last);
        self.members.pop();
        if pos < self.members.len() {
            self.positions.insert(self.members[pos], pos);
        }
        true
    }

    /// A uniformly random member, or `None` if the set is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[rng.gen_range(0..self.members.len())])
        }
    }

    /// A uniformly random member different from `exclude`, or `None` if no such
    /// member exists. Sampling is uniform over the set minus `exclude`.
    pub fn sample_excluding<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        exclude: NodeId,
    ) -> Option<NodeId> {
        match self.members.len() {
            0 => None,
            1 => {
                let only = self.members[0];
                (only != exclude).then_some(only)
            }
            len => {
                if !self.contains(exclude) {
                    return self.sample(rng);
                }
                // Rejection sampling: expected < 2 draws even for len = 2.
                loop {
                    let candidate = self.members[rng.gen_range(0..len)];
                    if candidate != exclude {
                        return Some(candidate);
                    }
                }
            }
        }
    }

    /// Iterator over the members in insertion-modified (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// The members as a slice (arbitrary order).
    #[must_use]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AliveSet::new();
        assert!(s.insert(id(1)));
        assert!(!s.insert(id(1)), "duplicate insert is rejected");
        assert!(s.insert(id(2)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(id(1)));
        assert!(s.remove(id(1)));
        assert!(!s.remove(id(1)), "double removal is rejected");
        assert!(!s.contains(id(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sample_from_empty_is_none() {
        let s = AliveSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.sample_excluding(&mut rng, id(1)).is_none());
    }

    #[test]
    fn sample_excluding_single_member() {
        let mut s = AliveSet::new();
        s.insert(id(7));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample_excluding(&mut rng, id(7)), None);
        assert_eq!(s.sample_excluding(&mut rng, id(8)), Some(id(7)));
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        let mut s = AliveSet::new();
        for raw in 0..10 {
            s.insert(id(raw));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng).unwrap().raw() as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "uniform sampling should give ~10000 per member, got {c}"
            );
        }
    }

    #[test]
    fn sample_excluding_never_returns_excluded() {
        let mut s = AliveSet::new();
        s.insert(id(0));
        s.insert(id(1));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(s.sample_excluding(&mut rng, id(0)), Some(id(1)));
        }
    }

    #[test]
    fn removal_keeps_positions_consistent() {
        let mut s = AliveSet::new();
        for raw in 0..50 {
            s.insert(id(raw));
        }
        for raw in (0..50).step_by(2) {
            assert!(s.remove(id(raw)));
        }
        let remaining: HashSet<NodeId> = s.iter().collect();
        assert_eq!(remaining.len(), 25);
        for raw in 0..50 {
            assert_eq!(remaining.contains(&id(raw)), raw % 2 == 1);
            assert_eq!(s.contains(id(raw)), raw % 2 == 1);
        }
        assert_eq!(s.as_slice().len(), 25);
    }
}
