//! Determinism: a fixed seed must reproduce byte-identical trajectories.
//!
//! The slab-indexed graph core iterates everything in dense-index order and
//! samples through the member table, so no hash-map iteration order can leak
//! into model evolution. These tests pin that property: two independent runs
//! from the same configuration must produce identical churn summaries,
//! flooding traces, event logs and final topologies — on every platform.

use churn_core::flooding::{run_flooding, FloodingConfig, FloodingRecord, FloodingSource};
use churn_core::{ChurnSummary, DynamicNetwork, ModelKind, Snapshot};

/// Advances a freshly built model for `units` time units, returning every
/// per-unit churn summary plus the final snapshot.
fn churn_trace(kind: ModelKind, seed: u64, units: u64) -> (Vec<ChurnSummary>, Snapshot) {
    let mut model = kind.build(96, 4, seed).unwrap();
    model.warm_up();
    let summaries: Vec<ChurnSummary> = (0..units).map(|_| model.advance_time_unit()).collect();
    let snapshot = model.snapshot();
    (summaries, snapshot)
}

fn flooding_trace(kind: ModelKind, seed: u64) -> FloodingRecord {
    let mut model = kind.build(128, 6, seed).unwrap();
    model.warm_up();
    run_flooding(
        &mut model,
        FloodingSource::NextToJoin,
        &FloodingConfig::default(),
    )
}

#[test]
fn same_seed_reproduces_identical_churn_summaries_and_topology() {
    for kind in ModelKind::ALL {
        let (summaries_a, snap_a) = churn_trace(kind, 0xC0FFEE, 64);
        let (summaries_b, snap_b) = churn_trace(kind, 0xC0FFEE, 64);
        assert_eq!(
            summaries_a, summaries_b,
            "{kind}: churn summaries must be identical across runs"
        );
        assert_eq!(
            snap_a, snap_b,
            "{kind}: final topology must be identical across runs"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_flooding_traces() {
    for kind in ModelKind::ALL {
        let record_a = flooding_trace(kind, 7);
        let record_b = flooding_trace(kind, 7);
        assert_eq!(record_a.source, record_b.source, "{kind}: same source");
        assert_eq!(
            record_a.rounds, record_b.rounds,
            "{kind}: per-round flooding stats must be identical across runs"
        );
        assert_eq!(
            record_a.outcome, record_b.outcome,
            "{kind}: flooding outcome must be identical across runs"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_event_logs() {
    for kind in ModelKind::ALL {
        let run = |()| {
            let mut model = match kind {
                ModelKind::Sdg | ModelKind::Sdgr => churn_core::StreamingModel::new(
                    churn_core::StreamingConfig::new(48, 3)
                        .edge_policy(kind.edge_policy())
                        .seed(11)
                        .record_events(true),
                )
                .map(churn_core::AnyModel::Streaming)
                .unwrap(),
                ModelKind::Pdg | ModelKind::Pdgr => churn_core::PoissonModel::new(
                    churn_core::PoissonConfig::with_expected_size(48, 3)
                        .edge_policy(kind.edge_policy())
                        .seed(11)
                        .record_events(true),
                )
                .map(churn_core::AnyModel::Poisson)
                .unwrap(),
                ModelKind::Raes => unreachable!("ALL holds only the paper's four models"),
            };
            model.advance_time_units(150);
            model.drain_events()
        };
        assert_eq!(
            run(()),
            run(()),
            "{kind}: recorded event logs must be identical across runs"
        );
    }
}

#[test]
fn different_seeds_still_diverge() {
    // Sanity counterpart: determinism must not come from ignoring the seed.
    for kind in ModelKind::ALL {
        let (_, snap_a) = churn_trace(kind, 1, 64);
        let (_, snap_b) = churn_trace(kind, 2, 64);
        assert_ne!(snap_a, snap_b, "{kind}: different seeds must diverge");
    }
}
