//! Property-based tests for the dynamic network models.
//!
//! These check model invariants over randomly drawn parameters and seeds — the
//! facts that must hold for *every* realisation, not just in expectation:
//! population laws, degree bookkeeping, the informed set being a subset of the
//! alive set, determinism under a fixed seed, and consistency of the type-erased
//! wrapper.

use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use churn_core::{
    AnyModel, DynamicNetwork, EdgePolicy, ModelKind, PoissonConfig, PoissonModel, StreamingConfig,
    StreamingModel,
};
use proptest::prelude::*;

fn model_kind_strategy() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::Sdg),
        Just(ModelKind::Sdgr),
        Just(ModelKind::Pdg),
        Just(ModelKind::Pdgr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming model's population is min(round, n) at every round, and the
    /// set of ages is always {0, …, population − 1}.
    #[test]
    fn streaming_population_and_ages_are_deterministic(
        n in 2usize..60,
        d in 1usize..6,
        seed in any::<u64>(),
        extra_rounds in 0u64..120,
    ) {
        let mut m = StreamingModel::new(StreamingConfig::new(n, d).seed(seed)).unwrap();
        let total = n as u64 + extra_rounds;
        for round in 1..=total {
            m.advance_time_unit();
            let expected = round.min(n as u64) as usize;
            prop_assert_eq!(m.alive_count(), expected);
            let mut ages: Vec<u64> = m
                .alive_ids()
                .into_iter()
                .map(|id| m.age_rounds(id).unwrap())
                .collect();
            ages.sort_unstable();
            let want: Vec<u64> = (0..expected as u64).collect();
            prop_assert_eq!(ages, want);
        }
    }

    /// Under edge regeneration every alive node keeps exactly d connected
    /// out-slots (once the network has at least two nodes), in both churn models.
    ///
    /// Poisson caveat: regeneration (Definition 4.14) only repairs a slot when
    /// its *target* dies, so a node that joined a (near-)empty network — the
    /// startup transient, or a deep population collapse — can carry
    /// never-connected slots for its whole exponential lifetime. Streaming
    /// warm-up (2n rounds with hard n-round lifetimes) provably flushes such
    /// nodes, so SDGR is checked exactly; for PDGR the exact check applies to
    /// nodes born after the startup transient, and survivors from it may only
    /// ever be *below* d, never above.
    #[test]
    fn regeneration_keeps_out_degree_full(
        kind in prop_oneof![Just(ModelKind::Sdgr), Just(ModelKind::Pdgr)],
        n in 30usize..80,
        d in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut m = kind.build(n, d, seed).unwrap();
        m.warm_up();
        for _ in 0..20 {
            m.advance_time_unit();
        }
        for id in m.alive_ids() {
            let out_degree = m.graph().out_degree(id).unwrap();
            prop_assert!(out_degree <= d);
            if kind.is_streaming() || m.birth_time(id).unwrap() > 1.5 * n as f64 {
                prop_assert_eq!(out_degree, d);
            }
        }
        m.graph().assert_invariants();
    }

    /// The graph's internal bookkeeping stays consistent under every model and
    /// seed.
    #[test]
    fn graph_invariants_hold_for_all_models(
        kind in model_kind_strategy(),
        n in 5usize..50,
        d in 1usize..5,
        seed in any::<u64>(),
        steps in 1u64..60,
    ) {
        let mut m = kind.build(n, d, seed).unwrap();
        for _ in 0..steps {
            m.advance_time_unit();
        }
        m.graph().assert_invariants();
        // Every out-slot target is alive and distinct from its owner.
        for id in m.alive_ids() {
            for target in m.graph().out_slots(id).unwrap().iter().flatten() {
                prop_assert!(m.contains(*target));
                prop_assert_ne!(*target, id);
            }
        }
    }

    /// Models are deterministic functions of their configuration: same seed,
    /// same trajectory; and time never decreases.
    #[test]
    fn models_are_deterministic_and_time_is_monotone(
        kind in model_kind_strategy(),
        n in 5usize..40,
        d in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut a = kind.build(n, d, seed).unwrap();
        let mut b = kind.build(n, d, seed).unwrap();
        let mut last_time = 0.0;
        for _ in 0..30 {
            let sa = a.advance_time_unit();
            let sb = b.advance_time_unit();
            prop_assert_eq!(sa, sb);
            prop_assert!(a.time() >= last_time);
            last_time = a.time();
        }
        prop_assert_eq!(a.alive_ids(), b.alive_ids());
    }

    /// Birth times returned by the model are consistent with the current time
    /// and node ages are non-negative.
    #[test]
    fn birth_times_are_consistent(
        kind in model_kind_strategy(),
        n in 5usize..40,
        d in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut m = kind.build(n, d, seed).unwrap();
        for _ in 0..(3 * n as u64) {
            m.advance_time_unit();
        }
        for id in m.alive_ids() {
            let birth = m.birth_time(id).unwrap();
            prop_assert!(birth >= 0.0);
            prop_assert!(birth <= m.time() + 1e-9);
            prop_assert!(m.age(id).unwrap() >= -1e-9);
        }
        prop_assert!(m.birth_time(churn_core::NodeId::new(u64::MAX)).is_none());
    }

    /// The flooding process maintains: informed ⊆ alive, the informed count never
    /// exceeds the alive count, and round counters advance by one per step.
    #[test]
    fn flooding_invariants(
        kind in model_kind_strategy(),
        n in 10usize..60,
        d in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut m = kind.build(n, d, seed).unwrap();
        m.warm_up();
        let record = run_flooding(
            &mut m,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(50),
        );
        prop_assert!(!record.rounds.is_empty());
        for (i, stats) in record.rounds.iter().enumerate() {
            prop_assert_eq!(stats.round, i as u64 + 1);
            prop_assert!(stats.informed <= stats.alive);
            prop_assert!(stats.newly_informed <= stats.informed);
            let fraction = stats.informed_fraction();
            prop_assert!((0.0..=1.0).contains(&fraction));
        }
        prop_assert!(record.peak_informed() <= n + n / 2 + 2);
    }

    /// The type-erased wrapper behaves exactly like the concrete model it wraps.
    #[test]
    fn any_model_delegates_faithfully(
        regen in any::<bool>(),
        streaming in any::<bool>(),
        n in 5usize..40,
        d in 1usize..5,
        seed in any::<u64>(),
    ) {
        let policy = if regen { EdgePolicy::Regenerate } else { EdgePolicy::Static };
        if streaming {
            let config = StreamingConfig::new(n, d).edge_policy(policy).seed(seed);
            let mut concrete = StreamingModel::new(config.clone()).unwrap();
            let mut wrapped = AnyModel::Streaming(StreamingModel::new(config).unwrap());
            for _ in 0..20 {
                prop_assert_eq!(concrete.advance_time_unit(), wrapped.advance_time_unit());
            }
            prop_assert_eq!(concrete.alive_ids(), wrapped.alive_ids());
            prop_assert_eq!(wrapped.model_kind().is_streaming(), true);
        } else {
            let config = PoissonConfig::with_expected_size(n.max(2), d).edge_policy(policy).seed(seed);
            let mut concrete = PoissonModel::new(config.clone()).unwrap();
            let mut wrapped = AnyModel::Poisson(PoissonModel::new(config).unwrap());
            for _ in 0..20 {
                prop_assert_eq!(concrete.advance_time_unit(), wrapped.advance_time_unit());
            }
            prop_assert_eq!(concrete.alive_ids(), wrapped.alive_ids());
            prop_assert_eq!(wrapped.model_kind().is_poisson(), true);
        }
    }

    /// Churn summaries are consistent with the alive set before and after the
    /// step, for every model.
    #[test]
    fn churn_summaries_match_alive_sets(
        kind in model_kind_strategy(),
        n in 5usize..50,
        d in 1usize..5,
        seed in any::<u64>(),
    ) {
        use std::collections::HashSet;
        let mut m = kind.build(n, d, seed).unwrap();
        m.warm_up();
        for _ in 0..10 {
            let before: HashSet<_> = m.alive_ids().into_iter().collect();
            let summary = m.advance_time_unit();
            let after: HashSet<_> = m.alive_ids().into_iter().collect();
            for b in &summary.births {
                prop_assert!(!before.contains(b) && after.contains(b));
            }
            for dth in &summary.deaths {
                prop_assert!(before.contains(dth) && !after.contains(dth));
            }
            // Nodes neither born nor dead persist.
            for id in &before {
                if !summary.deaths.contains(id) {
                    prop_assert!(after.contains(id));
                }
            }
        }
    }
}
