//! Property tests for the atomic-bitset merge underlying parallel flooding.
//!
//! The parallel frontier engine's correctness rests on one algebraic fact:
//! merging shard-local index sets into the shared bitset through per-word
//! atomic fetch-ORs yields exactly the set union, with every bit claimed by
//! exactly one caller — regardless of how the indices are split into shards,
//! in which order the shards run, or whether they run on real concurrent
//! threads. These tests pin that fact directly against the sequential
//! insertion of the same indices.

use std::collections::BTreeSet;

use churn_core::flooding::AtomicBitset;
use proptest::prelude::*;

/// Sequentially inserts `indices` and returns which were newly set.
fn sequential_union(capacity: usize, indices: &[u32]) -> (AtomicBitset, BTreeSet<u32>) {
    let mut set = AtomicBitset::with_bit_capacity(capacity);
    let mut distinct = BTreeSet::new();
    for &idx in indices {
        if set.set(idx) {
            distinct.insert(idx);
        }
    }
    (set, distinct)
}

fn words(set: &AtomicBitset, capacity: usize) -> Vec<u64> {
    let mut out = Vec::new();
    set.snapshot_into(&mut out);
    assert_eq!(out.len(), capacity.div_ceil(64));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded atomic merge == sequential set union, bit for bit, and the
    /// total number of successful `set_shared` claims equals the number of
    /// distinct indices (no bit is claimed twice, none is lost). The shards
    /// run on real OS threads, so the fetch-OR path is exercised under true
    /// concurrency even when the rayon pool is narrow.
    #[test]
    fn sharded_atomic_merge_equals_sequential_union(
        capacity in 1usize..2_000,
        indices in proptest::collection::vec(0u32..1_900, 0..300),
        shards in 1usize..9,
    ) {
        let indices: Vec<u32> = indices.into_iter().filter(|&i| (i as usize) < capacity).collect();
        let (sequential, distinct) = sequential_union(capacity, &indices);

        let shared = AtomicBitset::with_bit_capacity(capacity);
        let chunk = indices.len().div_ceil(shards).max(1);
        let claims: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = indices
                .chunks(chunk)
                .map(|shard| {
                    let shared = &shared;
                    scope.spawn(move || shard.iter().filter(|&&idx| shared.set_shared(idx)).count())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread"))
                .sum()
        });

        prop_assert_eq!(claims, distinct.len());
        prop_assert_eq!(words(&shared, capacity), words(&sequential, capacity));
        for idx in 0..capacity as u32 {
            prop_assert_eq!(shared.test(idx), distinct.contains(&idx));
        }
    }

    /// Clearing bits (what informed-entry revalidation does after churn) then
    /// re-merging behaves like set difference followed by union.
    #[test]
    fn clear_then_merge_matches_set_algebra(
        capacity in 64usize..1_000,
        initial in proptest::collection::vec(0u32..999, 0..150),
        cleared in proptest::collection::vec(0u32..999, 0..80),
        merged in proptest::collection::vec(0u32..999, 0..150),
    ) {
        let in_range = |v: &[u32]| {
            v.iter()
                .copied()
                .filter(move |&i| (i as usize) < capacity)
                .collect::<Vec<u32>>()
        };
        let mut set = AtomicBitset::with_bit_capacity(capacity);
        let mut reference: BTreeSet<u32> = BTreeSet::new();
        for idx in in_range(&initial) {
            set.set(idx);
            reference.insert(idx);
        }
        for idx in in_range(&cleared) {
            set.clear(idx);
            reference.remove(&idx);
        }
        for idx in in_range(&merged) {
            let newly = set.set_shared(idx);
            prop_assert_eq!(newly, reference.insert(idx));
        }
        for idx in 0..capacity as u32 {
            prop_assert_eq!(set.test(idx), reference.contains(&idx));
        }
    }
}
