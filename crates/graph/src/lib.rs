//! # churn-graph
//!
//! Dynamic graph substrate for the reproduction of *"Expansion and Flooding in
//! Dynamic Random Networks with Node Churn"* (Becchetti, Clementi, Pasquale,
//! Trevisan, Ziccardi — ICDCS 2021).
//!
//! The paper's four dynamic network models (SDG, SDGR, PDG, PDGR) all mutate the
//! same kind of topology: every node owns a fixed number of *out-slots* (the `d`
//! random connection requests it opens), edges are undirected for the purposes of
//! information diffusion, and an edge disappears as soon as either endpoint dies.
//! This crate provides that topology as a reusable data structure, together with
//! the analysis machinery the paper's statements are about:
//!
//! * [`DynamicGraph`] — the mutable out-slot/in-reference adjacency structure with
//!   O(1) amortised join / leave / rewire operations,
//! * [`Snapshot`] — an immutable, CSR-style view of a graph at one instant,
//! * [`hashing`] — the fast identifier hasher backing the `NodeId → index` map,
//! * [`traversal`] — BFS layers, connected components, diameter bounds,
//! * [`expansion`] — outer boundaries, vertex expansion (exact for small graphs,
//!   candidate-set estimation for large ones), isolated node census,
//! * [`generators`] — static baselines such as the `d`-out random graph of the
//!   paper's Lemma B.1 and Erdős–Rényi graphs,
//! * [`metrics`] — degree statistics and histograms.
//!
//! Nothing in this crate knows about churn distributions or time; that lives in
//! `churn-core`, which drives a [`DynamicGraph`] according to the paper's models.
//!
//! ## Dense-index architecture
//!
//! [`DynamicGraph`] is a **slab arena**: each alive node occupies one cell of a
//! contiguous array addressed by a dense `u32` index, vacated cells are
//! recycled through a free list, and all adjacency state (out-slot targets,
//! the in-reference multiset) is stored as dense indices with small inline
//! capacity — steady-state churn touches no hash table and performs no heap
//! allocation. Every mutator exists in two flavours:
//!
//! * **identifier-based** (`add_node`, `set_out_slot`, `remove_node`, …) — the
//!   stable public API, resolving [`NodeId`]s through one hash lookup;
//! * **dense-index** (`add_node_indexed`, `set_out_slot_at`,
//!   `remove_node_at` / `remove_node_into`, `sample_member*`, …) — the hot
//!   path the churn models in `churn-core` drive.
//!
//! **The `NodeId ↔ dense index` contract:** a dense index is valid exactly for
//! the lifetime of the node it was returned for. After that node's removal the
//! cell may be recycled for a different node, so any cached `(index, id)` pair
//! must be revalidated with [`DynamicGraph::id_at`] before reuse across
//! removals (`id_at(index) == Some(id)` iff the pair is still current —
//! identifiers are never reused, which makes this check sound). For caches
//! that should not carry identifiers at all, [`DenseHandle`] packs the index
//! with the cell's generation counter, making revalidation
//! ([`DynamicGraph::is_current`]) a flat O(1) probe with no identifier
//! compare; this is what the RAES protocol's pending-request queue in
//! `churn-protocol` uses. Indices are *not* compaction-stable either:
//! [`Snapshot`] assigns its own `0..n` positions ordered by identifier,
//! independent of slab layout, so snapshots of equal graphs compare equal
//! regardless of the arena's churn history.
//!
//! ## Example
//!
//! ```
//! use churn_graph::{DynamicGraph, NodeId, Snapshot};
//!
//! # fn main() -> Result<(), churn_graph::GraphError> {
//! let mut g = DynamicGraph::new();
//! let a = NodeId::new(0);
//! let b = NodeId::new(1);
//! let c = NodeId::new(2);
//! g.add_node(a, 2)?;
//! g.add_node(b, 2)?;
//! g.add_node(c, 2)?;
//! g.set_out_slot(a, 0, b)?;
//! g.set_out_slot(b, 0, c)?;
//!
//! let snap = Snapshot::of(&g);
//! assert_eq!(snap.len(), 3);
//! assert_eq!(snap.degree(b), Some(2)); // adjacent to both a and c
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod graph;
mod node;
mod snapshot;

pub mod hashing;

pub mod expansion;
pub mod generators;
pub mod metrics;
pub mod traversal;

pub use error::GraphError;
pub use graph::{
    DenseHandle, DynamicGraph, EdgeSlot, GraphDelta, RemovedNode, SAMPLE_NONE, SAMPLE_SKIP,
};
pub use node::{NodeId, NodeIdAllocator};
pub use snapshot::Snapshot;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
