//! A fast, non-cryptographic hasher for identifier-keyed maps.
//!
//! The `NodeId → dense index` map is off the dense hot paths but still sees
//! one insert and one remove per churn event, where SipHash (std's default)
//! costs more than the probe itself. Identifiers are allocator-issued `u64`s,
//! not attacker-controlled input, so a SplitMix64-style finalizer gives full
//! avalanche at a few cycles with no DoS concern.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative-finalizer hasher for small fixed-width keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); fixed-width keys use the fast paths below.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        let mut z = value
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.0);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// The [`IdHasher`] build state.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by identifiers, hashed with [`IdHasher`].
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A `HashSet` of identifiers, hashed with [`IdHasher`].
pub type IdHashSet<K> = HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn map_round_trips_node_ids() {
        let mut map: IdHashMap<NodeId, usize> = IdHashMap::default();
        for raw in 0..1000u64 {
            map.insert(NodeId::new(raw), raw as usize * 2);
        }
        for raw in 0..1000u64 {
            assert_eq!(map.get(&NodeId::new(raw)), Some(&(raw as usize * 2)));
        }
        assert_eq!(map.len(), 1000);
    }

    #[test]
    fn sequential_keys_spread_across_buckets() {
        // Avalanche sanity: consecutive ids should differ in many bits.
        let hash = |x: u64| {
            let mut h = IdHasher::default();
            h.write_u64(x);
            h.finish()
        };
        let mut min_flips = u32::MAX;
        for x in 0..1000u64 {
            min_flips = min_flips.min((hash(x) ^ hash(x + 1)).count_ones());
        }
        assert!(
            min_flips >= 10,
            "adjacent keys flip at least 10 bits, got {min_flips}"
        );
    }
}
