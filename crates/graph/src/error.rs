//! Error types for graph mutation.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors returned by fallible [`crate::DynamicGraph`] operations.
///
/// All variants carry the offending node identifier(s) so callers can produce
/// actionable diagnostics. The type implements [`std::error::Error`], `Send`
/// and `Sync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The node is not (or no longer) present in the graph.
    UnknownNode(NodeId),
    /// A node with this identifier is already present.
    DuplicateNode(NodeId),
    /// The requested out-slot index is outside the node's out-degree.
    SlotOutOfRange {
        /// Owner of the out-slots.
        node: NodeId,
        /// Requested slot index.
        slot: usize,
        /// Number of out-slots the node owns.
        len: usize,
    },
    /// An out-slot may not point at its own owner.
    SelfLoop(NodeId),
    /// A dense-index operation named a slab cell that holds no node (either
    /// never used, or vacated by a removal and not yet recycled).
    VacantIndex(u32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "node {id} is not in the graph"),
            GraphError::DuplicateNode(id) => write!(f, "node {id} is already in the graph"),
            GraphError::SlotOutOfRange { node, slot, len } => write!(
                f,
                "out-slot {slot} of node {node} is out of range (node has {len} slots)"
            ),
            GraphError::SelfLoop(id) => write!(f, "node {id} may not connect to itself"),
            GraphError::VacantIndex(idx) => {
                write!(f, "dense index {idx} names a vacant slab cell")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::UnknownNode(NodeId::new(3)), "v3"),
            (GraphError::DuplicateNode(NodeId::new(4)), "already"),
            (
                GraphError::SlotOutOfRange {
                    node: NodeId::new(5),
                    slot: 9,
                    len: 4,
                },
                "out of range",
            ),
            (GraphError::SelfLoop(NodeId::new(6)), "itself"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with("out-slot"),
                "error messages start lowercase: {msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<GraphError>();
    }
}
