//! Node identifiers and identifier allocation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node of a [`crate::DynamicGraph`].
///
/// Identifiers are plain `u64` values wrapped in a newtype so they cannot be
/// confused with indices into a [`crate::Snapshot`] (which are `usize` positions
/// in a compacted array). Identifiers are never reused by a
/// [`NodeIdAllocator`], which makes it safe to keep per-node bookkeeping (birth
/// times, informed flags, …) keyed by `NodeId` across node deaths.
///
/// # Example
///
/// ```
/// use churn_graph::NodeId;
///
/// let id = NodeId::new(42);
/// assert_eq!(id.raw(), 42);
/// assert_eq!(format!("{id}"), "v42");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from its raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw `u64` value of this identifier.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId::new(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.raw()
    }
}

/// Monotone allocator of fresh [`NodeId`]s.
///
/// The allocator never hands out the same identifier twice, so identifiers of
/// dead nodes remain usable as stable keys in caller-side maps.
///
/// # Example
///
/// ```
/// use churn_graph::NodeIdAllocator;
///
/// let mut alloc = NodeIdAllocator::new();
/// let a = alloc.next_id();
/// let b = alloc.next_id();
/// assert_ne!(a, b);
/// assert_eq!(alloc.allocated(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeIdAllocator {
    next: u64,
}

impl NodeIdAllocator {
    /// Creates an allocator whose first identifier is `NodeId::new(0)`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator whose first identifier is `NodeId::new(start)`.
    #[must_use]
    pub fn starting_at(start: u64) -> Self {
        NodeIdAllocator { next: start }
    }

    /// Returns a fresh, never-before-returned identifier.
    pub fn next_id(&mut self) -> NodeId {
        let id = NodeId::new(self.next);
        self.next += 1;
        id
    }

    /// Number of identifiers handed out so far (when starting at zero, this is
    /// also the next raw value).
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Peeks at the identifier the next call to [`Self::next_id`] will return.
    #[must_use]
    pub fn peek(&self) -> NodeId {
        NodeId::new(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trips_raw_value() {
        for raw in [0u64, 1, 17, u64::MAX] {
            assert_eq!(NodeId::new(raw).raw(), raw);
            assert_eq!(u64::from(NodeId::from(raw)), raw);
        }
    }

    #[test]
    fn node_id_display_and_debug_are_nonempty() {
        let id = NodeId::new(7);
        assert_eq!(id.to_string(), "v7");
        assert_eq!(format!("{id:?}"), "NodeId(7)");
    }

    #[test]
    fn node_id_ordering_follows_raw_values() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(100) > NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn allocator_returns_distinct_monotone_ids() {
        let mut alloc = NodeIdAllocator::new();
        let ids: Vec<NodeId> = (0..100).map(|_| alloc.next_id()).collect();
        let set: HashSet<NodeId> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len(), "all ids must be distinct");
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be monotonically increasing");
        }
        assert_eq!(alloc.allocated(), 100);
    }

    #[test]
    fn allocator_starting_at_offsets_ids() {
        let mut alloc = NodeIdAllocator::starting_at(1000);
        assert_eq!(alloc.peek(), NodeId::new(1000));
        assert_eq!(alloc.next_id(), NodeId::new(1000));
        assert_eq!(alloc.next_id(), NodeId::new(1001));
    }

    #[test]
    fn allocator_peek_does_not_consume() {
        let mut alloc = NodeIdAllocator::new();
        let p = alloc.peek();
        assert_eq!(alloc.next_id(), p);
    }
}
