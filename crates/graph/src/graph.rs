//! The mutable dynamic graph structure driven by the churn models.
//!
//! # Performance architecture
//!
//! Internally the graph is a **slab arena**: every alive node occupies one cell
//! of a `Vec<Option<NodeRecord>>`, vacated cells are recycled through a free
//! list, and all adjacency bookkeeping (out-slot targets, in-reference
//! multisets) is stored as dense `u32` slab indices rather than [`NodeId`]s.
//! A `NodeId → u32` map is maintained only for the identifier-based public
//! API; the churn models drive the graph through the `*_at` / `*_indexed`
//! dense methods and never touch a hash table on their hot paths. A dense
//! `members` vector of occupied cells (swap-remove order) supports O(1)
//! uniform alive-node sampling.
//!
//! The `NodeId ↔ dense index` contract: an index returned by
//! [`DynamicGraph::add_node_indexed`] or [`DynamicGraph::dense_index_of`]
//! stays valid exactly as long as that node is alive. Once the node is
//! removed, the index may be recycled for a *different* node, so callers
//! keeping indices across removals must re-validate them via
//! [`DynamicGraph::id_at`] (this is what the flooding bitset does after every
//! churn interval).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::hashing::IdHashMap;
use crate::{GraphError, NodeId, Result};

/// A generation-tagged reference to a slab cell of a [`DynamicGraph`].
///
/// A bare dense index is only valid while the node it was obtained for is
/// alive; revalidating it requires comparing identifiers through
/// [`DynamicGraph::id_at`]. A `DenseHandle` additionally carries the cell's
/// *generation* — a counter bumped on every removal and every cell reuse
/// (odd while occupied, even while vacant) — so [`DynamicGraph::is_current`]
/// can check validity in O(1) with one flat array probe and no identifier
/// compare; the parity also keeps hand-constructed or deserialized handles
/// from ever validating against a vacant cell. This is the currency of
/// choice for queues that must survive churn, such as the RAES protocol's
/// pending-request queue in `churn-protocol`.
///
/// # Example
///
/// ```
/// use churn_graph::{DynamicGraph, NodeId};
///
/// # fn main() -> Result<(), churn_graph::GraphError> {
/// let mut g = DynamicGraph::new();
/// g.add_node(NodeId::new(0), 1)?;
/// let h = g.handle_of(NodeId::new(0)).unwrap();
/// assert!(g.is_current(h));
/// g.remove_node(NodeId::new(0))?;
/// assert!(!g.is_current(h));
/// // The cell is recycled for a different node, same index, new generation.
/// g.add_node(NodeId::new(1), 1)?;
/// let h2 = g.handle_of(NodeId::new(1)).unwrap();
/// assert_eq!(h.index, h2.index);
/// assert!(!g.is_current(h) && g.is_current(h2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseHandle {
    /// The slab index of the cell.
    pub index: u32,
    /// Generation of the cell's occupant at the time the handle was taken.
    pub generation: u32,
}

/// A compact per-round change feed of a [`DynamicGraph`], for observers that
/// want to keep derived structures (incremental snapshots, live metric
/// trackers) in sync at O(changes) cost instead of rescanning the graph.
///
/// Recording is opt-in ([`DynamicGraph::set_delta_recording`]); with no
/// subscriber attached every mutator pays exactly one branch. The feed is a
/// *dirty set*, not an event log: consumers reconcile each listed cell against
/// the graph's **final** state for the window (births/deaths carry the
/// identifiers so per-node lifecycle bookkeeping — e.g. lifetime-isolation
/// confirmation — stays possible even when a cell is recycled within one
/// window).
///
/// Contract:
///
/// * `dirty` lists every slab cell whose occupancy or undirected adjacency
///   *may* have changed since the last [`DynamicGraph::take_delta_into`].
///   Duplicates are allowed; vacant or recycled cells are allowed. A cell not
///   listed is guaranteed unchanged.
/// * `births` / `deaths` list node insertions/removals in event order, as
///   `(dense index, identifier)` pairs. A cell recycled within one window
///   appears in both (death of the old occupant, birth of the new one); the
///   indices of both are also in `dirty`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Nodes inserted during the window, in event order.
    pub births: Vec<(u32, NodeId)>,
    /// Nodes removed during the window, in event order.
    pub deaths: Vec<(u32, NodeId)>,
    /// Slab cells whose occupancy/adjacency may have changed (duplicates and
    /// since-vacated cells allowed; unlisted cells are unchanged).
    pub dirty: Vec<u32>,
}

impl GraphDelta {
    /// An empty delta.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the delta, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.births.clear();
        self.deaths.clear();
        self.dirty.clear();
    }

    /// Returns `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.births.is_empty() && self.deaths.is_empty() && self.dirty.is_empty()
    }

    /// Number of churn events (births plus deaths) in the window.
    #[must_use]
    pub fn churn_events(&self) -> usize {
        self.births.len() + self.deaths.len()
    }
}

/// Identifies one of the `d` out-going connection requests a node owns.
///
/// The paper distinguishes, for every node `v`, between *out-edges* (the
/// connections `v` itself requested when it was born or when regenerating) and
/// *in-edges* (connections requested by other nodes). An [`EdgeSlot`] names one
/// out-edge position of one node; the pair `(owner, slot)` stays stable for the
/// owner's entire lifetime even as the slot gets re-pointed by edge
/// regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeSlot {
    /// Node that owns (requested) the edge.
    pub owner: NodeId,
    /// Index of the request in `0..out_degree(owner)`.
    pub slot: usize,
}

/// Summary of a node removal, returned by [`DynamicGraph::remove_node`].
///
/// The churn models need two pieces of information when a node dies:
///
/// * which of the dead node's own requests were connected (for bookkeeping), and
/// * which out-slots of *surviving* nodes just lost their target — these are the
///   slots that the edge-regeneration rule (models SDGR and PDGR) must re-point
///   to fresh uniform targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedNode {
    /// Identifier of the removed node.
    pub id: NodeId,
    /// Targets the removed node's own out-slots were connected to.
    pub out_targets: Vec<NodeId>,
    /// Out-slots of surviving nodes that pointed at the removed node and are now
    /// empty. Sorted by `(owner, slot)` for determinism.
    pub dangling_slots: Vec<EdgeSlot>,
    /// The same dangling slots as `(owner dense index, slot)` pairs, aligned
    /// element-wise with `dangling_slots`, so regeneration can re-point them
    /// without identifier lookups. The indices are valid until the owners die.
    pub dangling_dense: Vec<(u32, usize)>,
}

impl Default for RemovedNode {
    /// An empty record (id `u64::MAX`); used as the initial state of scratch
    /// buffers passed to [`DynamicGraph::remove_node_into`].
    fn default() -> Self {
        RemovedNode {
            id: NodeId::new(u64::MAX),
            out_targets: Vec::new(),
            dangling_slots: Vec::new(),
            dangling_dense: Vec::new(),
        }
    }
}

/// Sentinel for an unconnected out-slot (the dense-index equivalent of
/// `None`); slab indices never reach `u32::MAX`.
const NO_TARGET: u32 = u32::MAX;

/// A copy-on-write-free small vector: the first `N` elements live inline in
/// the record (one cache line away from the rest of the node), and only nodes
/// whose degree exceeds `N` spill to the heap. In the stationary regime of
/// the churn models almost no record spills, so node birth/death performs no
/// heap allocation and cloning a graph is a flat memcpy of the slab.
#[derive(Debug, Clone)]
struct MiniVec<const N: usize> {
    len: u32,
    inline: [u32; N],
    /// Boxed so the common no-spill record costs one pointer, not a Vec
    /// (the double indirection only ever costs on the rare spilled nodes).
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<u32>>>,
}

impl<const N: usize> MiniVec<N> {
    fn new() -> Self {
        MiniVec {
            len: 0,
            inline: [0; N],
            spill: None,
        }
    }

    fn filled(len: usize, value: u32) -> Self {
        let mut v = Self::new();
        for _ in 0..len {
            v.push(value);
        }
        v
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn spill_slice(&self) -> &[u32] {
        self.spill.as_ref().map_or(&[], |boxed| boxed.as_slice())
    }

    #[inline]
    fn get(&self, i: usize) -> u32 {
        if i < N {
            self.inline[i]
        } else {
            self.spill_slice()[i - N]
        }
    }

    #[inline]
    fn set(&mut self, i: usize, value: u32) {
        if i < N {
            self.inline[i] = value;
        } else {
            self.spill.as_mut().expect("index within spilled length")[i - N] = value;
        }
    }

    #[inline]
    fn push(&mut self, value: u32) {
        let i = self.len as usize;
        if i < N {
            self.inline[i] = value;
        } else {
            self.spill.get_or_insert_with(Default::default).push(value);
        }
        self.len += 1;
    }

    #[inline]
    fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        let moved = self.get(last);
        self.set(i, moved);
        if last >= N {
            self.spill
                .as_mut()
                .expect("spill exists for spilled length")
                .pop();
        }
        self.len -= 1;
    }

    /// Removes the first element, shifting the rest down (order-preserving,
    /// O(len) — trivial at the inline sizes used here). Needed where element
    /// order is meaningful, e.g. oldest-first in-reference eviction.
    fn remove_front(&mut self) {
        let len = self.len();
        debug_assert!(len > 0, "remove_front on an empty MiniVec");
        for j in 1..len.min(N) {
            self.inline[j - 1] = self.inline[j];
        }
        if len > N {
            let spill = self
                .spill
                .as_mut()
                .expect("spill exists for spilled length");
            self.inline[N - 1] = spill[0];
            spill.remove(0);
        }
        self.len -= 1;
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.inline[..self.len().min(N)]
            .iter()
            .chain(self.spill_slice())
            .copied()
    }

    fn position(&self, value: u32) -> Option<usize> {
        self.iter().position(|x| x == value)
    }

    fn contains(&self, value: u32) -> bool {
        self.position(value).is_some()
    }
}

#[derive(Debug, Clone)]
struct NodeRecord {
    /// The node's identifier (the reverse of the `NodeId → index` map).
    id: NodeId,
    /// Position of this node's slab index inside `DynamicGraph::members`.
    member_pos: u32,
    /// The node's own connection requests as dense indices; [`NO_TARGET`]
    /// means the slot is currently unconnected (its target died and no
    /// regeneration happened).
    out_slots: MiniVec<8>,
    /// Flat multiset of the out-slots (of other nodes) pointing at this node:
    /// one entry per pointing slot, owners repeated with multiplicity.
    /// Expected length is O(d), so linear scans beat hashing here.
    in_refs: MiniVec<12>,
}

impl NodeRecord {
    fn filled_out(&self) -> usize {
        self.out_slots.iter().filter(|&s| s != NO_TARGET).count()
    }
}

/// A dynamic graph whose nodes own a fixed array of out-going request slots.
///
/// This is the topology object every model of the paper mutates:
///
/// * joining node `v` calls [`add_node`](Self::add_node) with out-degree `d` and
///   then [`set_out_slot`](Self::set_out_slot) for each request,
/// * a dying node is removed with [`remove_node`](Self::remove_node), which also
///   reports the surviving slots left dangling,
/// * the regeneration rule re-points dangling slots with
///   [`set_out_slot`](Self::set_out_slot).
///
/// For analysis (flooding, expansion) the graph is viewed *undirected*: `u` and
/// `v` are neighbours if any out-slot of `u` points at `v` or vice versa, exactly
/// as in the paper ("the considered graphs are always undirected", Section 3.1).
///
/// All mutators also exist in a dense-index flavour (`add_node_indexed`,
/// `set_out_slot_at`, `remove_node_at`, …) that skips identifier hashing; see
/// the module docs for the index-validity contract.
///
/// # Example
///
/// ```
/// use churn_graph::{DynamicGraph, NodeId};
///
/// # fn main() -> Result<(), churn_graph::GraphError> {
/// let mut g = DynamicGraph::new();
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// g.add_node(a, 1)?;
/// g.add_node(b, 1)?;
/// g.set_out_slot(a, 0, b)?;
/// assert_eq!(g.degree(a), Some(1));
///
/// let removed = g.remove_node(b)?;
/// // a's only request pointed at b, so it is dangling now:
/// assert_eq!(removed.dangling_slots.len(), 1);
/// assert!(g.is_isolated(a).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    slab: Vec<Option<NodeRecord>>,
    free: Vec<u32>,
    members: Vec<u32>,
    index: IdHashMap<NodeId, u32>,
    filled_slots: usize,
    /// Per-cell generation counters (parallel to `slab`), bumped on both
    /// removal and cell reuse so [`DenseHandle`]s of dead occupants fail
    /// [`Self::is_current`] in O(1). Parity encodes occupancy — odd while the
    /// cell is occupied, even while vacant — so even a handle that was never
    /// issued by this graph can never validate against a vacant cell.
    generations: Vec<u32>,
    /// While `true`, iterating occupied slab cells in index order yields node
    /// identifiers in increasing order: no cell was ever recycled and every
    /// insertion used a fresh identifier larger than all earlier ones. This is
    /// the precondition of [`Snapshot`](crate::Snapshot)'s sort-free fast
    /// path. Cleared permanently by the first free-list reuse or out-of-order
    /// insertion.
    id_sorted: bool,
    /// Smallest raw identifier the next insertion may use without clearing
    /// `id_sorted` (one past the largest identifier inserted so far).
    next_sorted_id: u64,
    /// Change feed for observers (`None` while no subscriber is attached, so
    /// the mutators pay one branch). Boxed to keep the graph struct lean.
    delta: Option<Box<GraphDelta>>,
    /// Opt-in degree-bucketed member index for adversarial victim selection
    /// (`None` unless [`Self::set_degree_index`] enabled it). Boxed like the
    /// delta so the common case stays lean.
    degree: Option<Box<DegreeIndex>>,
    /// Opt-in per-cell behavior tags (parallel to `slab`; `0` = untagged).
    /// Empty until the first nonzero [`Self::set_tag_at`], so graphs that
    /// never tag pay nothing — not even a branch on the mutator paths, since
    /// only node removal touches the tags and it checks `is_empty` first.
    tags: Vec<u8>,
    /// Number of alive members whose tag is nonzero (maintained by
    /// [`Self::set_tag_at`] and node removal), so callers can account for
    /// the tagged subpopulation in O(1).
    tagged_members: usize,
}

/// Sentinel in [`DynamicGraph::sample_members_each_excluding_into`]'s exclude
/// list: skip this entry without consuming a random draw (the caller's
/// request is void, e.g. its owner died). Echoed verbatim in the output.
pub const SAMPLE_SKIP: u32 = u32::MAX;

/// Sentinel in [`DynamicGraph::sample_members_each_excluding_into`]'s output:
/// no valid candidate existed for this entry (the excluded node is the only
/// alive one, or the graph is empty).
pub const SAMPLE_NONE: u32 = u32::MAX - 1;

/// Degree-bucketed index over the alive members, keyed by *incident link
/// count* (filled out-slots plus in-references, with multiplicity — the
/// quantity [`DynamicGraph::incident_link_count_at`] reports and the
/// degree-targeted adversarial victim policy maximises).
///
/// Mutators do O(1) work per incident edge change: they only append the
/// touched cell to a pending list (the same instrumentation points the
/// [`GraphDelta`] change feed uses). Reconciliation against the current
/// incident counts happens lazily at query time, so each change is processed
/// at most once — replacing the O(n) member scan per adversarial death that
/// previously made degree-targeted churn infeasible at `n = 10^6`.
#[derive(Debug, Clone, Default)]
struct DegreeIndex {
    /// Cells whose incident count may have changed since the last flush.
    pending: Vec<u32>,
    /// Last reconciled incident count per cell (`NOT_TRACKED` when vacant).
    known: Vec<u32>,
    /// Position of each tracked cell inside its bucket.
    pos: Vec<u32>,
    /// `buckets[k]` = tracked cells with incident count `k`.
    buckets: Vec<Vec<u32>>,
    /// Upper bound on the highest non-empty bucket.
    max_bucket: usize,
}

/// Marker in [`DegreeIndex::known`] for cells not currently tracked.
const NOT_TRACKED: u32 = u32::MAX;

impl DegreeIndex {
    fn grow(&mut self, slab_len: usize) {
        if self.known.len() < slab_len {
            self.known.resize(slab_len, NOT_TRACKED);
            self.pos.resize(slab_len, 0);
        }
    }

    fn insert(&mut self, idx: u32, count: usize) {
        if self.buckets.len() <= count {
            self.buckets.resize_with(count + 1, Vec::new);
        }
        self.pos[idx as usize] = self.buckets[count].len() as u32;
        self.buckets[count].push(idx);
        self.known[idx as usize] = count as u32;
        self.max_bucket = self.max_bucket.max(count);
    }

    fn remove(&mut self, idx: u32) {
        let count = self.known[idx as usize];
        if count == NOT_TRACKED {
            return;
        }
        let bucket = &mut self.buckets[count as usize];
        let pos = self.pos[idx as usize] as usize;
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.pos[moved as usize] = pos as u32;
        }
        self.known[idx as usize] = NOT_TRACKED;
    }

    /// Reconciles every pending cell against the graph's current incident
    /// counts. Amortised O(1) per recorded change (duplicates are cheap:
    /// an already-reconciled cell compares equal and is skipped).
    fn flush(&mut self, slab: &[Option<NodeRecord>]) {
        self.grow(slab.len());
        while let Some(idx) = self.pending.pop() {
            let current = slab
                .get(idx as usize)
                .and_then(|cell| cell.as_ref())
                .map(|rec| rec.filled_out() + rec.in_refs.len());
            match current {
                None => self.remove(idx),
                Some(count) => {
                    if self.known[idx as usize] != count as u32 {
                        self.remove(idx);
                        self.insert(idx, count);
                    }
                }
            }
        }
    }

    /// The tracked cell with the largest incident count, ties broken towards
    /// the smallest identifier — exactly the choice of the reference O(n)
    /// scan. Cost: the downward walk over empty buckets (amortised against
    /// the insertions that raised `max_bucket`) plus one scan of the top
    /// non-empty bucket for the identifier tie-break.
    fn best(&mut self, slab: &[Option<NodeRecord>]) -> Option<(NodeId, u32)> {
        let mut k = self.max_bucket;
        loop {
            if let Some(bucket) = self.buckets.get(k) {
                if !bucket.is_empty() {
                    self.max_bucket = k;
                    let mut best: Option<(NodeId, u32)> = None;
                    for &idx in bucket {
                        let id = slab[idx as usize]
                            .as_ref()
                            .expect("tracked cells are occupied after a flush")
                            .id;
                        if best.is_none_or(|(best_id, _)| id < best_id) {
                            best = Some((id, idx));
                        }
                    }
                    return best;
                }
            }
            if k == 0 {
                self.max_bucket = 0;
                return None;
            }
            k -= 1;
        }
    }
}

impl Default for DynamicGraph {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl DynamicGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        DynamicGraph {
            slab: Vec::with_capacity(nodes),
            free: Vec::new(),
            members: Vec::with_capacity(nodes),
            index: IdHashMap::with_capacity_and_hasher(nodes, Default::default()),
            filled_slots: 0,
            generations: Vec::with_capacity(nodes),
            id_sorted: true,
            next_sorted_id: 0,
            delta: None,
            degree: None,
            tags: Vec::new(),
            tagged_members: 0,
        }
    }

    // ------------------------------------------------------------------
    // Change feed
    // ------------------------------------------------------------------

    /// Enables or disables [`GraphDelta`] recording. Enabling starts an empty
    /// window; disabling drops whatever was recorded. With recording off (the
    /// default) every mutator pays exactly one branch for the feature.
    pub fn set_delta_recording(&mut self, enabled: bool) {
        if enabled {
            if self.delta.is_none() {
                self.delta = Some(Box::default());
            }
        } else {
            self.delta = None;
        }
    }

    /// Returns `true` while [`GraphDelta`] recording is enabled.
    #[must_use]
    pub fn delta_recording(&self) -> bool {
        self.delta.is_some()
    }

    /// Moves the recorded delta window into `out` (cleared first) and starts
    /// a fresh window. A no-op (beyond clearing `out`) when recording is
    /// disabled. Buffer capacity is recycled in both directions, so a caller
    /// draining once per round allocates nothing in steady state.
    pub fn take_delta_into(&mut self, out: &mut GraphDelta) {
        out.clear();
        if let Some(delta) = self.delta.as_deref_mut() {
            std::mem::swap(delta, out);
        }
    }

    /// Marks a cell dirty in the change feed and/or the degree index's
    /// pending list (no-op while neither is attached).
    #[inline]
    fn mark_dirty(&mut self, idx: u32) {
        if let Some(delta) = self.delta.as_deref_mut() {
            delta.dirty.push(idx);
        }
        if let Some(degree) = self.degree.as_deref_mut() {
            degree.pending.push(idx);
        }
    }

    /// Returns `true` while any mutation observer (change feed or degree
    /// index) is attached — the mutators' single-branch guard.
    #[inline]
    fn observing(&self) -> bool {
        self.delta.is_some() || self.degree.is_some()
    }

    // ------------------------------------------------------------------
    // Degree-bucketed member index
    // ------------------------------------------------------------------

    /// Enables or disables the degree-bucketed member index behind
    /// [`Self::highest_degree_member`]. Enabling builds the index from the
    /// current members (one O(n) pass); from then on every mutator records
    /// the touched cells in O(1) and queries reconcile lazily. Disabling
    /// drops the index. With the index off (the default) the mutators pay
    /// exactly one branch for the feature, shared with the change feed.
    pub fn set_degree_index(&mut self, enabled: bool) {
        if !enabled {
            self.degree = None;
            return;
        }
        if self.degree.is_some() {
            return;
        }
        let mut index = Box::<DegreeIndex>::default();
        index.grow(self.slab.len());
        for &idx in &self.members {
            let count = self
                .incident_link_count_at(idx)
                .expect("member cells are occupied");
            index.insert(idx, count);
        }
        self.degree = Some(index);
    }

    /// Returns `true` while the degree-bucketed member index is enabled.
    #[must_use]
    pub fn degree_index_enabled(&self) -> bool {
        self.degree.is_some()
    }

    /// The alive node with the most incident links (with multiplicity,
    /// [`Self::incident_link_count_at`]), ties broken towards the smallest
    /// identifier, or `None` for an empty graph.
    ///
    /// With the degree index enabled ([`Self::set_degree_index`]) this
    /// reconciles the pending changes — amortised O(1) per incident edge
    /// change since the last query — and reads the top bucket; without it,
    /// one O(n) member scan. Both paths pick the identical node.
    pub fn highest_degree_member(&mut self) -> Option<(NodeId, u32)> {
        match self.degree.take() {
            Some(mut index) => {
                index.flush(&self.slab);
                let best = index.best(&self.slab);
                self.degree = Some(index);
                best
            }
            None => {
                let mut best: Option<(usize, NodeId, u32)> = None;
                for &idx in &self.members {
                    let rec = self.slab[idx as usize]
                        .as_ref()
                        .expect("member cells are occupied");
                    let links = rec.filled_out() + rec.in_refs.len();
                    let better = best.is_none_or(|(best_links, best_id, _)| {
                        links > best_links || (links == best_links && rec.id < best_id)
                    });
                    if better {
                        best = Some((links, rec.id, idx));
                    }
                }
                best.map(|(_, id, idx)| (id, idx))
            }
        }
    }

    // ------------------------------------------------------------------
    // Behavior tags
    // ------------------------------------------------------------------

    /// Assigns behavior tag `tag` to the alive node at dense index `idx`
    /// (`0` clears). Tags are an opt-in per-cell byte consumers interpret
    /// themselves (e.g. the protocol crate's Byzantine behavior codes); the
    /// graph only stores them and clears a cell's tag on removal, so a
    /// recycled cell never inherits its previous occupant's tag.
    ///
    /// Storage is allocated lazily on the first nonzero assignment: a graph
    /// that never tags stays tag-free ([`Self::tags_enabled`] is `false`)
    /// and pays nothing on any mutator path.
    ///
    /// # Errors
    ///
    /// [`GraphError::VacantIndex`] when `idx` holds no alive node.
    pub fn set_tag_at(&mut self, idx: u32, tag: u8) -> Result<()> {
        if !self.occupied(idx) {
            return Err(GraphError::VacantIndex(idx));
        }
        if tag == 0 && self.tags.is_empty() {
            return Ok(());
        }
        if self.tags.len() < self.slab.len() {
            self.tags.resize(self.slab.len(), 0);
        }
        let cell = &mut self.tags[idx as usize];
        self.tagged_members += usize::from(tag != 0);
        self.tagged_members -= usize::from(*cell != 0);
        *cell = tag;
        Ok(())
    }

    /// The behavior tag of the cell at dense index `idx` (`0` for untagged,
    /// vacant or out-of-range cells).
    #[inline]
    #[must_use]
    pub fn tag_at(&self, idx: u32) -> u8 {
        self.tags.get(idx as usize).copied().unwrap_or(0)
    }

    /// Returns `true` once any nonzero tag has ever been assigned — the
    /// single branch tag-aware consumers check before paying per-node tag
    /// lookups.
    #[inline]
    #[must_use]
    pub fn tags_enabled(&self) -> bool {
        !self.tags.is_empty()
    }

    /// Number of alive members carrying a nonzero tag, in O(1).
    #[must_use]
    pub fn tagged_member_count(&self) -> usize {
        self.tagged_members
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` when `id` is alive.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// Iterator over the identifiers of all alive nodes, in arbitrary order.
    ///
    /// Use [`Self::sorted_node_ids`] when deterministic iteration order matters.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().map(|&idx| self.record(idx).id)
    }

    /// All alive node identifiers in increasing order.
    #[must_use]
    pub fn sorted_node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.node_ids().collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of currently connected out-slots across all nodes.
    ///
    /// This counts *requests*, not distinct undirected edges: if `u` and `v`
    /// each point a slot at the other, both slots are counted. See
    /// [`Self::distinct_edge_count`] for the undirected count.
    #[must_use]
    pub fn filled_slot_count(&self) -> usize {
        self.filled_slots
    }

    /// Number of distinct undirected edges `{u, v}`.
    ///
    /// Computed on demand in `O(n + m log d)` without hashing: the sum of
    /// distinct-neighbour degrees counts every undirected edge exactly twice.
    #[must_use]
    pub fn distinct_edge_count(&self) -> usize {
        let mut scratch: Vec<u32> = Vec::new();
        let mut total_degree = 0usize;
        for &idx in &self.members {
            scratch.clear();
            self.neighbors_dense_into(idx, &mut scratch);
            scratch.sort_unstable();
            scratch.dedup();
            total_degree += scratch.len();
        }
        total_degree / 2
    }

    // ------------------------------------------------------------------
    // Dense-index surface
    // ------------------------------------------------------------------

    /// Length of the slab arena, i.e. one more than the largest dense index
    /// ever in use. Vacant cells count; use this to size index-keyed arrays
    /// (e.g. the flooding bitset).
    #[must_use]
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }

    /// The dense index of an alive node.
    #[must_use]
    pub fn dense_index_of(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// The identifier stored at dense index `idx`, or `None` when the cell is
    /// vacant or out of range. This is the index-revalidation primitive: a
    /// cached `(idx, id)` pair is still current iff `id_at(idx) == Some(id)`.
    #[must_use]
    pub fn id_at(&self, idx: u32) -> Option<NodeId> {
        self.slab
            .get(idx as usize)
            .and_then(|cell| cell.as_ref())
            .map(|rec| rec.id)
    }

    /// A generation-tagged handle for the node currently at dense index `idx`,
    /// or `None` when the cell is vacant or out of range.
    #[must_use]
    pub fn handle_at(&self, idx: u32) -> Option<DenseHandle> {
        self.occupied(idx).then(|| DenseHandle {
            index: idx,
            generation: self.generations[idx as usize],
        })
    }

    /// A generation-tagged handle for an alive node.
    #[must_use]
    pub fn handle_of(&self, id: NodeId) -> Option<DenseHandle> {
        self.dense_index_of(id).and_then(|idx| self.handle_at(idx))
    }

    /// Returns `true` while `handle` still refers to the node it was taken
    /// for. O(1) — a single flat array probe, no identifier compare and no
    /// record access: generation counters bump on every removal *and* every
    /// reuse (odd while occupied, even while vacant), so a generation match
    /// on an odd generation implies the cell is still in the exact occupancy
    /// epoch the handle was issued in. The parity guard also makes this total
    /// over arbitrary (hand-constructed or deserialized) handles: no handle
    /// value can ever validate against a vacant cell.
    #[must_use]
    pub fn is_current(&self, handle: DenseHandle) -> bool {
        let current = handle.generation % 2 == 1
            && self.generations.get(handle.index as usize) == Some(&handle.generation);
        debug_assert!(
            !current || self.occupied(handle.index),
            "odd-generation match must imply an occupied cell"
        );
        current
    }

    /// Returns `true` while the slab layout is *identifier-sorted*: occupied
    /// cells visited in index order carry increasing identifiers. Holds until
    /// the first recycled cell or out-of-order insertion, after which it stays
    /// `false` for the graph's lifetime. [`Snapshot`](crate::Snapshot)
    /// construction uses this to skip its identifier sort.
    #[must_use]
    pub fn id_sorted_layout(&self) -> bool {
        self.id_sorted
    }

    /// The dense indices of all alive nodes, in arbitrary (swap-remove) order.
    #[must_use]
    pub fn member_indices(&self) -> &[u32] {
        &self.members
    }

    /// A uniformly random alive node's dense index, or `None` when empty.
    pub fn sample_member<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[rng.gen_range(0..self.members.len())])
        }
    }

    /// A uniformly random alive dense index different from `exclude`, or
    /// `None` when no such node exists. Uniform over the alive set minus
    /// `exclude`; O(1) expected (rejection sampling).
    pub fn sample_member_excluding<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        exclude: u32,
    ) -> Option<u32> {
        match self.members.len() {
            0 => None,
            1 => {
                let only = self.members[0];
                (only != exclude).then_some(only)
            }
            len => loop {
                let candidate = self.members[rng.gen_range(0..len)];
                if candidate != exclude {
                    return Some(candidate);
                }
            },
        }
    }

    /// Draws `count` independent uniform alive indices, each different from
    /// `exclude`, appending them to `out`. Equivalent to `count` calls to
    /// [`Self::sample_member_excluding`], but keeps the random-number /
    /// member-table phase separate from whatever record work the caller does
    /// next, which lets the out-of-order core overlap the cache misses of the
    /// subsequent per-target touches.
    ///
    /// Stops early (appending fewer than `count`) when no valid target exists.
    pub fn sample_members_excluding_into<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        exclude: u32,
        count: usize,
        out: &mut Vec<u32>,
    ) {
        for _ in 0..count {
            match self.sample_member_excluding(rng, exclude) {
                Some(idx) => out.push(idx),
                None => break,
            }
        }
    }

    /// Bulk variant of [`Self::sample_member_excluding`] with a *per-entry*
    /// exclusion: for every entry of `excludes`, appends one uniformly random
    /// alive index different from that entry. An input of [`SAMPLE_SKIP`] is
    /// echoed verbatim without consuming a random draw (the caller's request
    /// is void — e.g. a repair request whose owner died); an entry with no
    /// valid candidate appends [`SAMPLE_NONE`].
    ///
    /// The output is aligned with `excludes` (`out` grows by exactly
    /// `excludes.len()`), and the random draws are **identical in number and
    /// order** to per-entry [`Self::sample_member_excluding`] calls over the
    /// non-skipped entries — so folding a per-request loop into one bulk call
    /// (the RAES repair sweep does) preserves recorded trajectories bit for
    /// bit. The win is keeping the whole sampling phase inside one member
    /// table walk, ahead of whatever record work the caller does next.
    pub fn sample_members_each_excluding_into<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        excludes: &[u32],
        out: &mut Vec<u32>,
    ) {
        out.reserve(excludes.len());
        for &exclude in excludes {
            if exclude == SAMPLE_SKIP {
                out.push(SAMPLE_SKIP);
                continue;
            }
            out.push(
                self.sample_member_excluding(rng, exclude)
                    .unwrap_or(SAMPLE_NONE),
            );
        }
    }

    /// Appends the dense indices of every undirected neighbour of `idx` to
    /// `out` (out-slot targets first, then in-referencing owners). Duplicates
    /// are *not* removed — callers that need a set deduplicate themselves
    /// (the flooding bitset gets deduplication for free).
    ///
    /// Appends nothing when `idx` is vacant.
    pub fn neighbors_dense_into(&self, idx: u32, out: &mut Vec<u32>) {
        let Some(rec) = self.slab.get(idx as usize).and_then(|cell| cell.as_ref()) else {
            return;
        };
        out.extend(rec.out_slots.iter().filter(|&t| t != NO_TARGET));
        out.extend(rec.in_refs.iter());
    }

    /// Iterates the dense indices of every undirected neighbour of `idx`
    /// (out-slot targets first, then in-referencing owners, duplicates kept),
    /// without touching the heap. Yields nothing when `idx` is vacant or out
    /// of range.
    ///
    /// This is the read-only shared-access flavour of
    /// [`Self::neighbors_dense_into`]: it borrows `self` immutably and
    /// allocates nothing, so any number of threads can expand adjacency
    /// concurrently over one `&DynamicGraph` (the parallel flooding engine in
    /// `churn-core` does exactly that across slab shards).
    pub fn neighbor_indices_at(&self, idx: u32) -> impl Iterator<Item = u32> + '_ {
        self.slab
            .get(idx as usize)
            .and_then(|cell| cell.as_ref())
            .into_iter()
            .flat_map(|rec| {
                rec.out_slots
                    .iter()
                    .filter(|&t| t != NO_TARGET)
                    .chain(rec.in_refs.iter())
            })
    }

    /// Splits the slab index space `0..slab_len` into at most `shards`
    /// contiguous, non-overlapping ranges that together cover every alive
    /// cell, for sharded parallel scans (each worker walks one range and
    /// skips vacant cells via [`Self::neighbor_indices_at`] /
    /// [`Self::id_at`]). Ranges are balanced by slab length; in the
    /// steady-state churn regime almost every cell is alive, so this is also
    /// balanced by population.
    ///
    /// Yields nothing for an empty slab; never yields an empty range.
    pub fn par_alive_ranges(&self, shards: usize) -> impl Iterator<Item = std::ops::Range<u32>> {
        let len = self.slab.len() as u32;
        let shards = (shards.max(1) as u32).min(len.max(1));
        let chunk = len.div_ceil(shards).max(1);
        (0..shards).filter_map(move |s| {
            let lo = s * chunk;
            let hi = ((s + 1) * chunk).min(len);
            (lo < hi).then_some(lo..hi)
        })
    }

    /// Dense-index variant of [`Self::in_request_count`]: the number of
    /// out-slots (of other nodes) currently pointing at the node in cell
    /// `idx`, with multiplicity. `None` when the cell is vacant.
    ///
    /// This is the saturation check of in-degree-bounded overlay protocols
    /// (accept a request only while `in_request_count_at < c·d`).
    #[must_use]
    pub fn in_request_count_at(&self, idx: u32) -> Option<usize> {
        self.slab
            .get(idx as usize)
            .and_then(|cell| cell.as_ref())
            .map(|rec| rec.in_refs.len())
    }

    /// Iterates the out-slot targets of the node at `idx`, in slot order —
    /// `None` for an unconnected slot. Yields nothing when the cell is vacant
    /// or out of range. This is the allocation-free dense flavour of
    /// [`Self::out_slots`] / [`Self::empty_out_slots`]: overlay maintenance
    /// loops walk it to find empty slots without touching the identifier map.
    pub fn out_slot_targets_at(&self, idx: u32) -> impl Iterator<Item = Option<u32>> + '_ {
        self.slab
            .get(idx as usize)
            .and_then(|cell| cell.as_ref())
            .into_iter()
            .flat_map(|rec| rec.out_slots.iter().map(|t| (t != NO_TARGET).then_some(t)))
    }

    /// Returns `true` when the alive nodes at `u` and `v` are adjacent in
    /// either direction. Dense flavour of [`Self::has_edge`]: one record
    /// access and two short linear scans, no hashing. `false` when either
    /// cell is vacant or out of range.
    #[must_use]
    pub fn has_edge_at(&self, u: u32, v: u32) -> bool {
        let Some(rec) = self.slab.get(u as usize).and_then(|cell| cell.as_ref()) else {
            return false;
        };
        self.occupied(v) && (rec.out_slots.contains(v) || rec.in_refs.contains(v))
    }

    /// Number of incident links of the node at `idx`, *with multiplicity*
    /// (its own connected out-slots plus the out-slots of others pointing at
    /// it). `None` when the cell is vacant. O(d); zero iff the node is
    /// isolated in the sense of Lemmas 3.5 / 4.10. This is the degree proxy
    /// adversarial targeted-by-degree churn maximises — cheaper than the
    /// distinct-neighbour degree, and identical except on multi-edges.
    #[must_use]
    pub fn incident_link_count_at(&self, idx: u32) -> Option<usize> {
        self.slab
            .get(idx as usize)
            .and_then(|cell| cell.as_ref())
            .map(|rec| rec.filled_out() + rec.in_refs.len())
    }

    /// The owner (dense index) of the earliest-recorded surviving in-reference
    /// of the node at `idx`, or `None` when the cell is vacant or has no
    /// in-references.
    ///
    /// The in-reference multiset is compacted with swap-removes, so this is
    /// the *approximately* oldest incoming link — exact while no in-reference
    /// was dropped, and always one of the older survivors otherwise. That is
    /// the precision an eviction heuristic (e.g. the RAES `evict-oldest`
    /// saturation policy) needs.
    #[must_use]
    pub fn oldest_in_ref_at(&self, idx: u32) -> Option<u32> {
        let rec = self.slab.get(idx as usize).and_then(|cell| cell.as_ref())?;
        (!rec.in_refs.is_empty()).then(|| rec.in_refs.get(0))
    }

    /// Severs the earliest-recorded in-reference of `idx` (its approximately
    /// oldest incoming link, see [`Self::oldest_in_ref_at`]): the pointing
    /// out-slot of the owning node is cleared. Returns the owner's dense
    /// index and the cleared slot, or `None` when `idx` is vacant or has no
    /// in-references.
    ///
    /// The in-reference list's relative order is preserved (order-preserving
    /// front removal), so consecutive sheds walk the surviving links
    /// oldest-first — the behaviour eviction policies under sustained
    /// saturation depend on. Resolves each record once; this is the hot
    /// eviction step of in-degree-capped overlay policies (the RAES
    /// `evict-oldest` knob).
    pub fn shed_oldest_in_ref(&mut self, idx: u32) -> Option<(u32, usize)> {
        let rec = self.slab.get_mut(idx as usize)?.as_mut()?;
        if rec.in_refs.is_empty() {
            return None;
        }
        let owner = rec.in_refs.get(0);
        rec.in_refs.remove_front();
        let owner_rec = self.slab[owner as usize]
            .as_mut()
            .expect("in-reference owners are alive");
        let slot = owner_rec
            .out_slots
            .position(idx)
            .expect("in-reference implies a pointing out-slot");
        owner_rec.out_slots.set(slot, NO_TARGET);
        self.filled_slots -= 1;
        if self.observing() {
            self.mark_dirty(idx);
            self.mark_dirty(owner);
        }
        Some((owner, slot))
    }

    fn record(&self, idx: u32) -> &NodeRecord {
        self.slab[idx as usize]
            .as_ref()
            .expect("dense index of an alive node")
    }

    fn record_mut(&mut self, idx: u32) -> &mut NodeRecord {
        self.slab[idx as usize]
            .as_mut()
            .expect("dense index of an alive node")
    }

    fn occupied(&self, idx: u32) -> bool {
        self.slab
            .get(idx as usize)
            .is_some_and(|cell| cell.is_some())
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Adds a node with `out_degree` (initially unconnected) out-slots.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if a node with this identifier is
    /// already alive.
    pub fn add_node(&mut self, id: NodeId, out_degree: usize) -> Result<()> {
        self.add_node_indexed(id, out_degree).map(|_| ())
    }

    /// Adds a node like [`Self::add_node`] and returns its dense index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if a node with this identifier is
    /// already alive.
    pub fn add_node_indexed(&mut self, id: NodeId, out_degree: usize) -> Result<u32> {
        if self.index.contains_key(&id) {
            return Err(GraphError::DuplicateNode(id));
        }
        let record = NodeRecord {
            id,
            member_pos: self.members.len() as u32,
            out_slots: MiniVec::filled(out_degree, NO_TARGET),
            in_refs: MiniVec::new(),
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                // A recycled cell breaks the index-order = id-order property.
                self.id_sorted = false;
                self.slab[idx as usize] = Some(record);
                // Vacant-even → occupied-odd.
                self.generations[idx as usize] = self.generations[idx as usize].wrapping_add(1);
                idx
            }
            None => {
                let idx = self.slab.len() as u32;
                self.slab.push(Some(record));
                self.generations.push(1);
                idx
            }
        };
        if id.raw() < self.next_sorted_id {
            self.id_sorted = false;
        }
        self.next_sorted_id = self.next_sorted_id.max(id.raw().saturating_add(1));
        self.members.push(idx);
        self.index.insert(id, idx);
        if self.observing() {
            if let Some(delta) = self.delta.as_deref_mut() {
                delta.births.push((idx, id));
            }
            self.mark_dirty(idx);
        }
        Ok(idx)
    }

    /// Appends an additional (unconnected) out-slot to `id` and returns its index.
    ///
    /// Used by callers whose out-degree is not fixed up front (e.g. Erdős–Rényi
    /// generation or overlay protocols that grow their target out-degree).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not alive.
    pub fn push_out_slot(&mut self, id: NodeId) -> Result<usize> {
        let idx = self.resolve(id)?;
        let rec = self.record_mut(idx);
        rec.out_slots.push(NO_TARGET);
        Ok(rec.out_slots.len() - 1)
    }

    fn resolve(&self, id: NodeId) -> Result<u32> {
        self.index
            .get(&id)
            .copied()
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Points out-slot `slot` of `owner` at `target`, returning the previous
    /// target of that slot (if any).
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if `owner` or `target` is not alive,
    /// * [`GraphError::SlotOutOfRange`] if `slot >= out_degree(owner)`,
    /// * [`GraphError::SelfLoop`] if `owner == target`.
    pub fn set_out_slot(
        &mut self,
        owner: NodeId,
        slot: usize,
        target: NodeId,
    ) -> Result<Option<NodeId>> {
        if owner == target {
            return Err(GraphError::SelfLoop(owner));
        }
        let target_idx = self.resolve(target)?;
        let owner_idx = self.resolve(owner)?;
        let prev = self.set_out_slot_at(owner_idx, slot, target_idx)?;
        Ok(prev.map(|idx| self.record(idx).id))
    }

    /// Dense-index variant of [`Self::set_out_slot`]; returns the previous
    /// target's dense index.
    ///
    /// # Errors
    ///
    /// As [`Self::set_out_slot`]; a vacant `owner_idx` or `target_idx` is
    /// reported as [`GraphError::VacantIndex`].
    pub fn set_out_slot_at(
        &mut self,
        owner_idx: u32,
        slot: usize,
        target_idx: u32,
    ) -> Result<Option<u32>> {
        if owner_idx == target_idx {
            let id = self
                .id_at(owner_idx)
                .ok_or(GraphError::VacantIndex(owner_idx))?;
            return Err(GraphError::SelfLoop(id));
        }
        if !self.occupied(target_idx) {
            return Err(GraphError::VacantIndex(target_idx));
        }
        let prev = {
            let Some(rec) = self
                .slab
                .get_mut(owner_idx as usize)
                .and_then(Option::as_mut)
            else {
                return Err(GraphError::VacantIndex(owner_idx));
            };
            let len = rec.out_slots.len();
            if slot >= len {
                return Err(GraphError::SlotOutOfRange {
                    node: rec.id,
                    slot,
                    len,
                });
            }
            let prev = rec.out_slots.get(slot);
            rec.out_slots.set(slot, target_idx);
            prev
        };
        if prev != NO_TARGET {
            if prev != target_idx {
                self.dec_in_ref(prev, owner_idx);
                self.inc_in_ref(target_idx, owner_idx);
                if self.observing() {
                    self.mark_dirty(owner_idx);
                    self.mark_dirty(prev);
                    self.mark_dirty(target_idx);
                }
            }
            // filled count unchanged: slot was already occupied
        } else {
            self.inc_in_ref(target_idx, owner_idx);
            self.filled_slots += 1;
            if self.observing() {
                self.mark_dirty(owner_idx);
                self.mark_dirty(target_idx);
            }
        }
        Ok((prev != NO_TARGET).then_some(prev))
    }

    /// Clears out-slot `slot` of `owner`, returning the target it pointed at.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if `owner` is not alive,
    /// * [`GraphError::SlotOutOfRange`] if `slot >= out_degree(owner)`.
    pub fn clear_out_slot(&mut self, owner: NodeId, slot: usize) -> Result<Option<NodeId>> {
        let owner_idx = self.resolve(owner)?;
        let prev = self.clear_out_slot_at(owner_idx, slot)?;
        Ok(prev.map(|idx| self.record(idx).id))
    }

    /// Dense-index variant of [`Self::clear_out_slot`].
    ///
    /// # Errors
    ///
    /// As [`Self::clear_out_slot`]; a vacant `owner_idx` is reported as
    /// [`GraphError::VacantIndex`].
    pub fn clear_out_slot_at(&mut self, owner_idx: u32, slot: usize) -> Result<Option<u32>> {
        let prev = {
            let Some(rec) = self
                .slab
                .get_mut(owner_idx as usize)
                .and_then(Option::as_mut)
            else {
                return Err(GraphError::VacantIndex(owner_idx));
            };
            let len = rec.out_slots.len();
            if slot >= len {
                return Err(GraphError::SlotOutOfRange {
                    node: rec.id,
                    slot,
                    len,
                });
            }
            let prev = rec.out_slots.get(slot);
            rec.out_slots.set(slot, NO_TARGET);
            prev
        };
        if prev != NO_TARGET {
            self.dec_in_ref(prev, owner_idx);
            self.filled_slots -= 1;
            if self.observing() {
                self.mark_dirty(owner_idx);
                self.mark_dirty(prev);
            }
        }
        Ok((prev != NO_TARGET).then_some(prev))
    }

    /// Removes `id` and every edge incident to it.
    ///
    /// Returns a [`RemovedNode`] describing both the dead node's own requests and
    /// the out-slots of surviving nodes that were pointing at it (now cleared).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not alive.
    pub fn remove_node(&mut self, id: NodeId) -> Result<RemovedNode> {
        let idx = self.resolve(id)?;
        self.remove_node_at(idx)
    }

    /// Dense-index variant of [`Self::remove_node`]. The removed cell is
    /// recycled by a later insertion, invalidating the index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VacantIndex`] when `idx` holds no node.
    pub fn remove_node_at(&mut self, idx: u32) -> Result<RemovedNode> {
        let mut removed = RemovedNode::default();
        self.remove_node_into(idx, &mut removed)?;
        Ok(removed)
    }

    /// Like [`Self::remove_node_at`], but writes the removal report into a
    /// caller-owned scratch buffer (cleared first), so steady-state churn
    /// performs no heap allocation. The churn models pass the same buffer
    /// every round.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VacantIndex`] when `idx` holds no node; `out` is
    /// left cleared in that case.
    pub fn remove_node_into(&mut self, idx: u32, out: &mut RemovedNode) -> Result<()> {
        out.id = NodeId::new(u64::MAX);
        out.out_targets.clear();
        out.dangling_slots.clear();
        out.dangling_dense.clear();

        let record = self
            .slab
            .get_mut(idx as usize)
            .and_then(Option::take)
            .ok_or(GraphError::VacantIndex(idx))?;
        out.id = record.id;
        self.index.remove(&record.id);
        // Clear the behavior tag so a recycled cell never inherits it. The
        // slab may have grown past the tag array since the last assignment,
        // hence the bounds-checked access.
        if !self.tags.is_empty() {
            if let Some(tag) = self.tags.get_mut(idx as usize) {
                if *tag != 0 {
                    self.tagged_members -= 1;
                }
                *tag = 0;
            }
        }
        if self.observing() {
            if let Some(delta) = self.delta.as_deref_mut() {
                delta.deaths.push((idx, record.id));
            }
            self.mark_dirty(idx);
            // Every endpoint of an incident edge changes adjacency: the dead
            // node's own targets and the owners of the slots pointing at it.
            for target in record.out_slots.iter().filter(|&t| t != NO_TARGET) {
                self.mark_dirty(target);
            }
            for owner in record.in_refs.iter() {
                self.mark_dirty(owner);
            }
        }

        // Unhook from the dense member list (swap-remove, O(1)).
        let pos = record.member_pos as usize;
        self.members.swap_remove(pos);
        if let Some(&moved) = self.members.get(pos) {
            self.record_mut(moved).member_pos = pos as u32;
        }
        self.free.push(idx);
        // Invalidate outstanding handles to this cell: occupied-odd →
        // vacant-even (wrapping: only equality with a live handle matters,
        // and 2^32 reuses cannot be outstanding).
        self.generations[idx as usize] = self.generations[idx as usize].wrapping_add(1);

        // The dead node's own requests: drop the in-references they created.
        for target in record.out_slots.iter().filter(|&t| t != NO_TARGET) {
            out.out_targets.push(self.record(target).id);
            self.filled_slots -= 1;
            Self::dec_in_ref_list(&mut self.record_mut(target).in_refs, idx);
        }

        // Surviving out-slots pointing at the dead node become dangling. The
        // in-reference multiset holds one entry per pointing slot (owners
        // repeated with multiplicity), and each iteration clears exactly the
        // first still-pointing slot of that owner.
        for owner in record.in_refs.iter() {
            if owner == idx {
                continue;
            }
            let owner_rec = self.record_mut(owner);
            let owner_id = owner_rec.id;
            let slot = owner_rec
                .out_slots
                .position(idx)
                .expect("in-reference implies a pointing out-slot");
            owner_rec.out_slots.set(slot, NO_TARGET);
            out.dangling_slots.push(EdgeSlot {
                owner: owner_id,
                slot,
            });
            out.dangling_dense.push((owner, slot));
        }
        self.filled_slots -= out.dangling_slots.len();

        // Sort both dangling views in lockstep by (owner, slot). Degrees are
        // O(d), so an allocation-free insertion sort wins here.
        for i in 1..out.dangling_slots.len() {
            let mut j = i;
            while j > 0 && out.dangling_slots[j - 1] > out.dangling_slots[j] {
                out.dangling_slots.swap(j - 1, j);
                out.dangling_dense.swap(j - 1, j);
                j -= 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Identifier-based queries
    // ------------------------------------------------------------------

    /// The out-slot targets of `id`, or `None` if `id` is not alive.
    ///
    /// Allocates a fresh vector and resolves every target's identifier; use
    /// [`Self::out_slots_into`] with a reused buffer in loops over many nodes.
    #[must_use]
    pub fn out_slots(&self, id: NodeId) -> Option<Vec<Option<NodeId>>> {
        let idx = self.dense_index_of(id)?;
        Some(
            self.record(idx)
                .out_slots
                .iter()
                .map(|slot| (slot != NO_TARGET).then(|| self.record(slot).id))
                .collect(),
        )
    }

    /// Appends the out-slot targets of `id` (in slot order, `None` for
    /// unconnected slots) to `out` without allocating; returns `false` (and
    /// appends nothing) when `id` is not alive.
    pub fn out_slots_into(&self, id: NodeId, out: &mut Vec<Option<NodeId>>) -> bool {
        let Some(idx) = self.dense_index_of(id) else {
            return false;
        };
        out.extend(
            self.record(idx)
                .out_slots
                .iter()
                .map(|slot| (slot != NO_TARGET).then(|| self.record(slot).id)),
        );
        true
    }

    /// Number of out-slots `id` owns (connected or not).
    #[must_use]
    pub fn out_slot_count(&self, id: NodeId) -> Option<usize> {
        let idx = self.dense_index_of(id)?;
        Some(self.record(idx).out_slots.len())
    }

    /// Number of currently connected out-slots of `id`.
    #[must_use]
    pub fn out_degree(&self, id: NodeId) -> Option<usize> {
        let idx = self.dense_index_of(id)?;
        Some(self.record(idx).filled_out())
    }

    /// Indices of the currently unconnected out-slots of `id`.
    #[must_use]
    pub fn empty_out_slots(&self, id: NodeId) -> Option<Vec<usize>> {
        let idx = self.dense_index_of(id)?;
        Some(
            self.record(idx)
                .out_slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| (s == NO_TARGET).then_some(i))
                .collect(),
        )
    }

    /// Distinct nodes that hold at least one out-slot pointing at `id`.
    #[must_use]
    pub fn in_neighbors(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let idx = self.dense_index_of(id)?;
        let mut v: Vec<NodeId> = self
            .record(idx)
            .in_refs
            .iter()
            .map(|owner| self.record(owner).id)
            .collect();
        v.sort_unstable();
        v.dedup();
        Some(v)
    }

    /// Total number of out-slots (of other nodes) pointing at `id`, with
    /// multiplicity. This is the "in-degree" in the sense of requests received.
    #[must_use]
    pub fn in_request_count(&self, id: NodeId) -> Option<usize> {
        let idx = self.dense_index_of(id)?;
        Some(self.record(idx).in_refs.len())
    }

    /// Distinct undirected neighbours of `id` (union of out-targets and
    /// in-referencing nodes), sorted.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let idx = self.dense_index_of(id)?;
        let mut dense = Vec::new();
        self.neighbors_dense_into(idx, &mut dense);
        let mut ids: Vec<NodeId> = dense.into_iter().map(|i| self.record(i).id).collect();
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    /// Number of distinct undirected neighbours of `id`.
    #[must_use]
    pub fn degree(&self, id: NodeId) -> Option<usize> {
        let idx = self.dense_index_of(id)?;
        let mut dense = Vec::new();
        self.neighbors_dense_into(idx, &mut dense);
        dense.sort_unstable();
        dense.dedup();
        Some(dense.len())
    }

    /// Returns `true` when `id` currently has no incident edges at all (its own
    /// requests are all dangling and no other node points at it). This is the
    /// notion of *isolated node* of Lemmas 3.5 and 4.10 of the paper.
    ///
    /// Returns `None` if `id` is not alive.
    #[must_use]
    pub fn is_isolated(&self, id: NodeId) -> Option<bool> {
        let idx = self.dense_index_of(id)?;
        let rec = self.record(idx);
        Some(rec.filled_out() == 0 && rec.in_refs.is_empty())
    }

    /// Returns `true` when `u` and `v` are adjacent (in either direction).
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (Some(u_idx), Some(v_idx)) = (self.dense_index_of(u), self.dense_index_of(v)) else {
            return false;
        };
        let rec = self.record(u_idx);
        rec.out_slots.contains(v_idx) || rec.in_refs.contains(v_idx)
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks that the in-reference multiset of every node exactly mirrors the
    /// out-slots pointing at it, that no slot points at a vacant cell, that no
    /// self-loops exist, that the filled-slot counter, free list, member list
    /// and identifier map are consistent.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when an invariant is violated.
    pub fn assert_invariants(&self) {
        // Slab occupancy matches members + free list.
        assert_eq!(
            self.members.len() + self.free.len(),
            self.slab.len(),
            "member list and free list must partition the slab"
        );
        for &idx in &self.free {
            assert!(
                self.slab[idx as usize].is_none(),
                "free-list cell {idx} is occupied"
            );
        }
        assert_eq!(
            self.index.len(),
            self.members.len(),
            "identifier map out of sync with member list"
        );
        assert_eq!(
            self.generations.len(),
            self.slab.len(),
            "generation counters must cover the whole slab"
        );
        for (idx, cell) in self.slab.iter().enumerate() {
            assert_eq!(
                self.generations[idx] % 2 == 1,
                cell.is_some(),
                "generation parity of cell {idx} must encode its occupancy"
            );
        }
        if self.id_sorted {
            let mut last: Option<NodeId> = None;
            for cell in self.slab.iter().flatten() {
                assert!(
                    last.is_none_or(|prev| prev < cell.id),
                    "id_sorted layout flag is set but slab order is not id-sorted"
                );
                last = Some(cell.id);
            }
        }

        let mut expected_in: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut filled = 0usize;
        for &u in &self.members {
            let rec = self.record(u);
            assert_eq!(
                self.members[rec.member_pos as usize], u,
                "member_pos of {} is stale",
                rec.id
            );
            assert_eq!(
                self.index.get(&rec.id),
                Some(&u),
                "identifier map disagrees for {}",
                rec.id
            );
            for target in rec.out_slots.iter().filter(|&t| t != NO_TARGET) {
                assert!(
                    self.occupied(target),
                    "out-slot of {} points at vacant cell {target}",
                    rec.id
                );
                assert_ne!(u, target, "self-loop at {}", rec.id);
                filled += 1;
                expected_in.entry(target).or_default().push(u);
            }
        }
        assert_eq!(
            filled, self.filled_slots,
            "filled-slot counter out of sync (actual {filled}, cached {})",
            self.filled_slots
        );
        for &v in &self.members {
            let rec = self.record(v);
            let mut expected = expected_in.remove(&v).unwrap_or_default();
            let mut actual: Vec<u32> = rec.in_refs.iter().collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(
                actual, expected,
                "in-reference multiset of {} is inconsistent",
                rec.id
            );
        }
        assert!(
            expected_in.is_empty(),
            "in-references recorded for vacant cells: {expected_in:?}"
        );
    }

    #[inline]
    fn inc_in_ref(&mut self, target: u32, owner: u32) {
        self.record_mut(target).in_refs.push(owner);
    }

    #[inline]
    fn dec_in_ref(&mut self, target: u32, owner: u32) {
        Self::dec_in_ref_list(&mut self.record_mut(target).in_refs, owner);
    }

    #[inline]
    fn dec_in_ref_list(refs: &mut MiniVec<12>, owner: u32) {
        if let Some(pos) = refs.position(owner) {
            refs.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn triangle() -> DynamicGraph {
        // a -> b, b -> c, c -> a
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 1).unwrap();
        }
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(1), 0, id(2)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        g
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = DynamicGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.filled_slot_count(), 0);
        assert_eq!(g.distinct_edge_count(), 0);
        g.assert_invariants();
    }

    #[test]
    fn add_node_rejects_duplicates() {
        let mut g = DynamicGraph::new();
        g.add_node(id(1), 3).unwrap();
        assert_eq!(g.add_node(id(1), 3), Err(GraphError::DuplicateNode(id(1))));
    }

    #[test]
    fn set_out_slot_connects_and_reports_previous_target() {
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 2).unwrap();
        }
        assert_eq!(g.set_out_slot(id(0), 0, id(1)).unwrap(), None);
        assert_eq!(g.set_out_slot(id(0), 0, id(2)).unwrap(), Some(id(1)));
        assert_eq!(g.degree(id(1)), Some(0));
        assert_eq!(g.degree(id(2)), Some(1));
        assert_eq!(g.filled_slot_count(), 1);
        g.assert_invariants();
    }

    #[test]
    fn set_out_slot_same_target_is_idempotent() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        assert_eq!(g.set_out_slot(id(0), 0, id(1)).unwrap(), Some(id(1)));
        assert_eq!(g.filled_slot_count(), 1);
        assert_eq!(g.in_request_count(id(1)), Some(1));
        g.assert_invariants();
    }

    #[test]
    fn set_out_slot_validates_arguments() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        assert_eq!(
            g.set_out_slot(id(0), 0, id(0)),
            Err(GraphError::SelfLoop(id(0)))
        );
        assert_eq!(
            g.set_out_slot(id(0), 5, id(1)),
            Err(GraphError::SlotOutOfRange {
                node: id(0),
                slot: 5,
                len: 1
            })
        );
        assert_eq!(
            g.set_out_slot(id(0), 0, id(9)),
            Err(GraphError::UnknownNode(id(9)))
        );
        assert_eq!(
            g.set_out_slot(id(9), 0, id(1)),
            Err(GraphError::UnknownNode(id(9)))
        );
    }

    #[test]
    fn clear_out_slot_disconnects() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        assert_eq!(g.clear_out_slot(id(0), 0).unwrap(), Some(id(1)));
        assert_eq!(g.clear_out_slot(id(0), 0).unwrap(), None);
        assert!(g.is_isolated(id(1)).unwrap());
        assert_eq!(g.filled_slot_count(), 0);
        g.assert_invariants();
    }

    #[test]
    fn neighbors_union_out_and_in_edges() {
        let g = triangle();
        // Every node has one out-target and one in-reference, distinct.
        for raw in 0..3 {
            assert_eq!(g.degree(id(raw)), Some(2));
            assert_eq!(g.out_degree(id(raw)), Some(1));
        }
        assert_eq!(g.distinct_edge_count(), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        assert!(g.has_edge(id(0), id(1)));
        assert!(g.has_edge(id(1), id(0)));
        assert!(!g.has_edge(id(0), id(99)));
    }

    #[test]
    fn remove_node_reports_dangling_slots() {
        let mut g = DynamicGraph::new();
        for raw in 0..4 {
            g.add_node(id(raw), 2).unwrap();
        }
        // 1, 2, 3 all point at 0; 0 points at 1.
        g.set_out_slot(id(1), 0, id(0)).unwrap();
        g.set_out_slot(id(2), 1, id(0)).unwrap();
        g.set_out_slot(id(3), 0, id(0)).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();

        let removed = g.remove_node(id(0)).unwrap();
        assert_eq!(removed.id, id(0));
        assert_eq!(removed.out_targets, vec![id(1)]);
        assert_eq!(
            removed.dangling_slots,
            vec![
                EdgeSlot {
                    owner: id(1),
                    slot: 0
                },
                EdgeSlot {
                    owner: id(2),
                    slot: 1
                },
                EdgeSlot {
                    owner: id(3),
                    slot: 0
                },
            ]
        );
        // The dense view names the same slots in the same order.
        assert_eq!(removed.dangling_dense.len(), removed.dangling_slots.len());
        for (edge_slot, &(owner_idx, slot)) in
            removed.dangling_slots.iter().zip(&removed.dangling_dense)
        {
            assert_eq!(g.id_at(owner_idx), Some(edge_slot.owner));
            assert_eq!(edge_slot.slot, slot);
        }
        assert!(!g.contains(id(0)));
        assert_eq!(g.filled_slot_count(), 0);
        for raw in 1..4 {
            assert!(g.is_isolated(id(raw)).unwrap());
        }
        g.assert_invariants();
    }

    #[test]
    fn remove_unknown_node_errors() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.remove_node(id(0)), Err(GraphError::UnknownNode(id(0))));
    }

    #[test]
    fn multiple_slots_to_same_target_tracked_with_multiplicity() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 3).unwrap();
        g.add_node(id(1), 3).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(0), 1, id(1)).unwrap();
        assert_eq!(g.in_request_count(id(1)), Some(2));
        assert_eq!(g.degree(id(1)), Some(1));
        g.clear_out_slot(id(0), 0).unwrap();
        assert_eq!(g.in_request_count(id(1)), Some(1));
        assert!(!g.is_isolated(id(1)).unwrap());
        g.clear_out_slot(id(0), 1).unwrap();
        assert!(g.is_isolated(id(1)).unwrap());
        g.assert_invariants();
    }

    #[test]
    fn push_out_slot_grows_out_degree() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 0).unwrap();
        g.add_node(id(1), 0).unwrap();
        let s = g.push_out_slot(id(0)).unwrap();
        assert_eq!(s, 0);
        g.set_out_slot(id(0), s, id(1)).unwrap();
        assert_eq!(g.out_slot_count(id(0)), Some(1));
        assert_eq!(g.degree(id(1)), Some(1));
        assert_eq!(g.push_out_slot(id(9)), Err(GraphError::UnknownNode(id(9))));
    }

    #[test]
    fn empty_out_slots_lists_dangling_requests() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 3).unwrap();
        g.add_node(id(1), 3).unwrap();
        g.set_out_slot(id(0), 1, id(1)).unwrap();
        assert_eq!(g.empty_out_slots(id(0)), Some(vec![0, 2]));
        assert_eq!(g.empty_out_slots(id(7)), None);
    }

    #[test]
    fn isolated_after_neighbor_death_without_regeneration() {
        // The scenario behind Lemma 3.5: a node whose only connections die.
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 2).unwrap();
        g.add_node(id(1), 2).unwrap();
        g.add_node(id(2), 2).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(0), 1, id(2)).unwrap();
        assert!(!g.is_isolated(id(0)).unwrap());
        g.remove_node(id(1)).unwrap();
        g.remove_node(id(2)).unwrap();
        assert!(g.is_isolated(id(0)).unwrap());
        g.assert_invariants();
    }

    #[test]
    fn sorted_node_ids_are_sorted() {
        let mut g = DynamicGraph::new();
        for raw in [5u64, 1, 9, 3] {
            g.add_node(id(raw), 0).unwrap();
        }
        assert_eq!(g.sorted_node_ids(), vec![id(1), id(3), id(5), id(9)]);
    }

    #[test]
    fn slab_cells_are_recycled_and_revalidated() {
        let mut g = DynamicGraph::new();
        let a = g.add_node_indexed(id(0), 1).unwrap();
        let b = g.add_node_indexed(id(1), 1).unwrap();
        g.set_out_slot_at(a, 0, b).unwrap();
        assert_eq!(g.id_at(a), Some(id(0)));
        g.remove_node_at(a).unwrap();
        assert_eq!(g.id_at(a), None, "vacated cell holds no node");

        // The freed cell is reused by the next insertion under a new id…
        let c = g.add_node_indexed(id(2), 1).unwrap();
        assert_eq!(c, a, "free list recycles the vacated cell");
        // …and revalidation by identifier detects the reuse.
        assert_eq!(g.id_at(a), Some(id(2)));
        assert_eq!(g.dense_index_of(id(0)), None);
        assert_eq!(g.slab_len(), 2, "slab does not grow while cells are free");
        g.assert_invariants();
    }

    #[test]
    fn dense_sampling_is_uniform_over_members() {
        use rand::SeedableRng;
        let mut g = DynamicGraph::new();
        for raw in 0..10 {
            g.add_node(id(raw), 0).unwrap();
        }
        g.remove_node(id(3)).unwrap();
        g.remove_node(id(7)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts: HashMap<NodeId, u32> = HashMap::new();
        for _ in 0..80_000 {
            let idx = g.sample_member(&mut rng).unwrap();
            *counts.entry(g.id_at(idx).unwrap()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 8, "only alive nodes are sampled");
        for (&node, &count) in &counts {
            assert!(
                (count as i64 - 10_000).abs() < 800,
                "node {node} sampled {count} times, expected ~10000"
            );
        }
        // Exclusion removes exactly the excluded member.
        let excluded = g.dense_index_of(id(0)).unwrap();
        for _ in 0..1000 {
            let idx = g.sample_member_excluding(&mut rng, excluded).unwrap();
            assert_ne!(idx, excluded);
        }
    }

    #[test]
    fn handles_revalidate_in_o1_across_recycling() {
        let mut g = DynamicGraph::new();
        let a = g.add_node_indexed(id(0), 1).unwrap();
        let b = g.add_node_indexed(id(1), 1).unwrap();
        let ha = g.handle_at(a).unwrap();
        let hb = g.handle_of(id(1)).unwrap();
        assert_eq!(hb.index, b);
        assert!(g.is_current(ha) && g.is_current(hb));

        g.remove_node_at(a).unwrap();
        assert!(!g.is_current(ha), "handle dies with its node");
        assert_eq!(g.handle_at(a), None, "vacant cells yield no handle");

        // Recycling the cell must not resurrect the stale handle.
        let c = g.add_node_indexed(id(2), 1).unwrap();
        assert_eq!(c, a);
        assert!(!g.is_current(ha));
        let hc = g.handle_at(c).unwrap();
        assert!(g.is_current(hc));
        assert_eq!(hc.index, ha.index);
        assert_ne!(hc.generation, ha.generation);
        // Out-of-range indices are handled gracefully.
        assert_eq!(g.handle_at(99), None);
        assert!(!g.is_current(DenseHandle {
            index: 99,
            generation: 0
        }));
        g.assert_invariants();
    }

    #[test]
    fn forged_handles_never_validate_against_vacant_cells() {
        // DenseHandle's fields are public, so a caller (or a deserializer)
        // can construct handles the graph never issued. Those must never
        // report current for a vacant cell: vacant cells carry even
        // generations and valid handles only ever carry odd ones.
        let mut g = DynamicGraph::new();
        let a = g.add_node_indexed(id(0), 0).unwrap();
        g.remove_node_at(a).unwrap();
        let vacant_generation = {
            // Reconstruct the vacant cell's current counter by probing the
            // next occupancy: reuse bumps it by exactly one.
            let reused = g.add_node_indexed(id(1), 0).unwrap();
            assert_eq!(reused, a);
            let occupied = g.handle_at(a).unwrap().generation;
            g.remove_node_at(a).unwrap();
            occupied.wrapping_add(1)
        };
        for generation in [vacant_generation, 0, 1, 2, 3, u32::MAX] {
            assert!(
                !g.is_current(DenseHandle {
                    index: a,
                    generation
                }),
                "no handle value may validate against the vacant cell \
                 (tried generation {generation})"
            );
        }
        g.assert_invariants();
    }

    #[test]
    fn dense_protocol_queries_mirror_id_api() {
        let mut g = DynamicGraph::new();
        for raw in 0..4 {
            g.add_node(id(raw), 2).unwrap();
        }
        let at = |raw: u64, g: &DynamicGraph| g.dense_index_of(id(raw)).unwrap();
        g.set_out_slot(id(1), 0, id(0)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        g.set_out_slot(id(2), 1, id(0)).unwrap();
        let zero = at(0, &g);
        assert_eq!(g.in_request_count_at(zero), Some(3));
        assert_eq!(g.in_request_count_at(99), None);
        // Oldest in-reference is the first recorded one (node 1).
        assert_eq!(g.oldest_in_ref_at(zero), Some(at(1, &g)));
        assert_eq!(g.oldest_in_ref_at(at(3, &g)), None, "no in-references");
        assert_eq!(g.oldest_in_ref_at(99), None);
    }

    #[test]
    fn shed_oldest_in_ref_clears_the_earliest_pointing_slot() {
        let mut g = DynamicGraph::new();
        for raw in 0..4 {
            g.add_node(id(raw), 2).unwrap();
        }
        g.set_out_slot(id(1), 1, id(0)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        let zero = g.dense_index_of(id(0)).unwrap();
        let one = g.dense_index_of(id(1)).unwrap();

        // The earliest in-reference (node 1, slot 1) is shed first.
        assert_eq!(g.shed_oldest_in_ref(zero), Some((one, 1)));
        assert_eq!(g.in_request_count(id(0)), Some(1));
        assert_eq!(g.out_degree(id(1)), Some(0));
        g.assert_invariants();

        // Then node 2's, after which nothing is left to shed.
        let two = g.dense_index_of(id(2)).unwrap();
        assert_eq!(g.shed_oldest_in_ref(zero), Some((two, 0)));
        assert_eq!(g.shed_oldest_in_ref(zero), None, "no in-references left");
        assert_eq!(g.shed_oldest_in_ref(99), None, "vacant index");
        assert!(g.is_isolated(id(0)).unwrap());
        assert_eq!(g.filled_slot_count(), 0);
        g.assert_invariants();
    }

    #[test]
    fn consecutive_sheds_walk_in_refs_oldest_first() {
        // Three or more links expose ordering bugs a pair cannot: a
        // swap-remove-based shed would evict newest after the first call.
        let mut g = DynamicGraph::new();
        for raw in 0..5 {
            g.add_node(id(raw), 1).unwrap();
        }
        for raw in 1..5 {
            g.set_out_slot(id(raw), 0, id(0)).unwrap();
        }
        let zero = g.dense_index_of(id(0)).unwrap();
        let shed_owner = |g: &mut DynamicGraph| {
            let (owner, _) = g.shed_oldest_in_ref(zero).unwrap();
            g.id_at(owner).unwrap()
        };
        assert_eq!(shed_owner(&mut g), id(1));
        assert_eq!(shed_owner(&mut g), id(2));
        assert_eq!(shed_owner(&mut g), id(3));
        assert_eq!(shed_owner(&mut g), id(4));
        g.assert_invariants();

        // Same walk with enough links to spill past the inline in-reference
        // capacity (12), covering remove_front's spill branch.
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        for raw in 1..=15 {
            g.add_node(id(raw), 1).unwrap();
            g.set_out_slot(id(raw), 0, id(0)).unwrap();
        }
        let zero = g.dense_index_of(id(0)).unwrap();
        for raw in 1..=15 {
            let (owner, _) = g.shed_oldest_in_ref(zero).unwrap();
            assert_eq!(g.id_at(owner), Some(id(raw)));
            g.assert_invariants();
        }
        assert!(g.is_isolated(id(0)).unwrap());
    }

    #[test]
    fn neighbor_indices_at_matches_neighbors_dense_into() {
        let mut g = DynamicGraph::new();
        for raw in 0..6 {
            g.add_node(id(raw), 3).unwrap();
        }
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(0), 2, id(2)).unwrap();
        g.set_out_slot(id(3), 1, id(0)).unwrap();
        g.set_out_slot(id(4), 0, id(0)).unwrap();
        g.remove_node(id(5)).unwrap();
        let mut scratch = Vec::new();
        for idx in 0..g.slab_len() as u32 {
            scratch.clear();
            g.neighbors_dense_into(idx, &mut scratch);
            let iterated: Vec<u32> = g.neighbor_indices_at(idx).collect();
            assert_eq!(iterated, scratch, "cell {idx}");
        }
        assert_eq!(g.neighbor_indices_at(99).count(), 0, "out of range");
    }

    #[test]
    fn par_alive_ranges_partition_the_slab() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.par_alive_ranges(4).count(), 0, "empty slab, no ranges");
        for raw in 0..37 {
            g.add_node(id(raw), 0).unwrap();
        }
        g.remove_node(id(5)).unwrap();
        for shards in [1usize, 2, 3, 4, 7, 36, 37, 64] {
            let ranges: Vec<_> = g.par_alive_ranges(shards).collect();
            assert!(ranges.len() <= shards.max(1));
            assert!(ranges.iter().all(|r| !r.is_empty()));
            // Contiguous cover of 0..slab_len with no overlap.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, g.slab_len() as u32);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn id_sorted_layout_tracks_insertion_order_and_recycling() {
        let mut g = DynamicGraph::new();
        assert!(g.id_sorted_layout(), "empty graph is trivially sorted");
        for raw in 0..5 {
            g.add_node(id(raw), 0).unwrap();
        }
        assert!(g.id_sorted_layout());
        // Removal alone keeps the ordering of the surviving cells.
        g.remove_node(id(2)).unwrap();
        assert!(g.id_sorted_layout());
        g.assert_invariants();
        // The next insertion recycles the vacated cell and breaks it.
        g.add_node(id(7), 0).unwrap();
        assert!(!g.id_sorted_layout());
        g.assert_invariants();

        // Out-of-order identifiers also break it, even without recycling.
        let mut g = DynamicGraph::new();
        g.add_node(id(5), 0).unwrap();
        assert!(g.id_sorted_layout());
        g.add_node(id(3), 0).unwrap();
        assert!(!g.id_sorted_layout());
        g.assert_invariants();
    }

    #[test]
    fn dense_edge_and_slot_queries_mirror_id_api() {
        let mut g = DynamicGraph::new();
        for raw in 0..4 {
            g.add_node(id(raw), 2).unwrap();
        }
        g.set_out_slot(id(0), 1, id(1)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        let at = |raw: u64| g.dense_index_of(id(raw)).unwrap();
        let (zero, one, two, three) = (at(0), at(1), at(2), at(3));

        assert!(g.has_edge_at(zero, one) && g.has_edge_at(one, zero));
        assert!(g.has_edge_at(zero, two) && g.has_edge_at(two, zero));
        assert!(!g.has_edge_at(zero, three));
        assert!(!g.has_edge_at(99, zero) && !g.has_edge_at(zero, 99));

        let slots: Vec<Option<u32>> = g.out_slot_targets_at(zero).collect();
        assert_eq!(slots, vec![None, Some(one)]);
        assert_eq!(g.out_slot_targets_at(99).count(), 0);

        assert_eq!(g.incident_link_count_at(zero), Some(2));
        assert_eq!(g.incident_link_count_at(three), Some(0));
        assert_eq!(g.incident_link_count_at(99), None);

        g.remove_node(id(1)).unwrap();
        assert!(!g.has_edge_at(zero, one), "dead endpoint has no edges");
    }

    #[test]
    fn delta_recording_tracks_churn_and_dirty_cells() {
        let mut g = DynamicGraph::new();
        let mut delta = GraphDelta::new();
        // Recording off: mutations leave the drained delta empty.
        g.add_node(id(0), 2).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.is_empty());

        g.set_delta_recording(true);
        assert!(g.delta_recording());
        let b = g.add_node_indexed(id(1), 2).unwrap();
        let c = g.add_node_indexed(id(2), 2).unwrap();
        let a = g.dense_index_of(id(0)).unwrap();
        g.set_out_slot_at(a, 0, b).unwrap();
        g.take_delta_into(&mut delta);
        assert_eq!(delta.births, vec![(b, id(1)), (c, id(2))]);
        assert!(delta.deaths.is_empty());
        assert_eq!(delta.churn_events(), 2);
        // Births, the slot owner and the slot target are all dirty.
        for idx in [a, b, c] {
            assert!(delta.dirty.contains(&idx), "cell {idx} must be dirty");
        }

        // Re-pointing a slot dirties owner, old target and new target.
        g.set_out_slot_at(a, 0, c).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.births.is_empty() && delta.deaths.is_empty());
        for idx in [a, b, c] {
            assert!(delta.dirty.contains(&idx), "cell {idx} must be dirty");
        }

        // Idempotent re-point records nothing.
        g.set_out_slot_at(a, 0, c).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.is_empty());

        // A removal dirties the dead cell and every surviving endpoint.
        g.set_out_slot_at(b, 0, c).unwrap();
        g.take_delta_into(&mut delta);
        let removed = g.remove_node_at(c).unwrap();
        assert_eq!(removed.id, id(2));
        g.take_delta_into(&mut delta);
        assert_eq!(delta.deaths, vec![(c, id(2))]);
        for idx in [a, b, c] {
            assert!(delta.dirty.contains(&idx), "cell {idx} must be dirty");
        }

        // Recycling within one window reports both lifecycle events.
        let reused = g.add_node_indexed(id(3), 1).unwrap();
        assert_eq!(reused, c);
        g.remove_node_at(reused).unwrap();
        g.take_delta_into(&mut delta);
        assert_eq!(delta.births, vec![(c, id(3))]);
        assert_eq!(delta.deaths, vec![(c, id(3))]);

        g.set_delta_recording(false);
        g.add_node(id(9), 1).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.is_empty());
        g.assert_invariants();
    }

    #[test]
    fn delta_records_clear_and_shed_operations() {
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 2).unwrap();
        }
        let at = |raw: u64, g: &DynamicGraph| g.dense_index_of(id(raw)).unwrap();
        g.set_out_slot(id(1), 0, id(0)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        g.set_delta_recording(true);
        let mut delta = GraphDelta::new();

        g.clear_out_slot(id(1), 0).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.dirty.contains(&at(1, &g)) && delta.dirty.contains(&at(0, &g)));

        g.shed_oldest_in_ref(at(0, &g)).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.dirty.contains(&at(0, &g)) && delta.dirty.contains(&at(2, &g)));

        // Clearing an already-empty slot records nothing.
        g.clear_out_slot(id(1), 0).unwrap();
        g.take_delta_into(&mut delta);
        assert!(delta.is_empty());
    }

    #[test]
    fn vacant_index_operations_error() {
        let mut g = DynamicGraph::new();
        let a = g.add_node_indexed(id(0), 1).unwrap();
        assert_eq!(g.remove_node_at(99), Err(GraphError::VacantIndex(99)));
        assert_eq!(
            g.set_out_slot_at(a, 0, 42),
            Err(GraphError::VacantIndex(42))
        );
        assert_eq!(
            g.set_out_slot_at(17, 0, a),
            Err(GraphError::VacantIndex(17))
        );
        assert_eq!(g.clear_out_slot_at(17, 0), Err(GraphError::VacantIndex(17)));
        g.remove_node_at(a).unwrap();
        assert_eq!(g.remove_node_at(a), Err(GraphError::VacantIndex(a)));
    }

    #[test]
    fn degree_index_matches_scan_under_random_churn() {
        use rand::Rng;
        // Two copies of the same evolving graph: one answers the
        // highest-degree query through the bucketed index, the other through
        // the O(n) scan. They must agree after every mutation, including
        // removals, recycling and retargeted slots.
        let mut indexed = DynamicGraph::new();
        indexed.set_degree_index(true);
        assert!(indexed.degree_index_enabled());
        let mut scanned = DynamicGraph::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mut next_id = 0u64;
        let mut alive: Vec<NodeId> = Vec::new();
        for step in 0..600 {
            let action = rng.gen_range(0..10);
            if alive.len() < 3 || action < 3 {
                let node = id(next_id);
                next_id += 1;
                indexed.add_node(node, 3).unwrap();
                scanned.add_node(node, 3).unwrap();
                alive.push(node);
            } else if action < 5 && alive.len() > 3 {
                let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
                indexed.remove_node(victim).unwrap();
                scanned.remove_node(victim).unwrap();
            } else {
                let owner = alive[rng.gen_range(0..alive.len())];
                let target = alive[rng.gen_range(0..alive.len())];
                let slot = rng.gen_range(0..3);
                if owner != target {
                    indexed.set_out_slot(owner, slot, target).unwrap();
                    scanned.set_out_slot(owner, slot, target).unwrap();
                } else {
                    indexed.clear_out_slot(owner, slot).unwrap();
                    scanned.clear_out_slot(owner, slot).unwrap();
                }
            }
            assert_eq!(
                indexed.highest_degree_member(),
                scanned.highest_degree_member(),
                "index and scan disagree after step {step}"
            );
        }
        // Disabling drops the index; the query falls back to the scan.
        indexed.set_degree_index(false);
        assert!(!indexed.degree_index_enabled());
        assert_eq!(
            indexed.highest_degree_member(),
            scanned.highest_degree_member()
        );
    }

    #[test]
    fn degree_index_tracks_shed_and_bulk_removal_endpoints() {
        let mut g = DynamicGraph::new();
        for raw in 0..4u64 {
            g.add_node(id(raw), 2).unwrap();
        }
        g.set_degree_index(true);
        g.set_out_slot(id(0), 0, id(2)).unwrap();
        g.set_out_slot(id(1), 0, id(2)).unwrap();
        g.set_out_slot(id(3), 0, id(2)).unwrap();
        assert_eq!(g.highest_degree_member(), Some((id(2), 2)));
        // Shedding the oldest in-link lowers both endpoints.
        g.shed_oldest_in_ref(2).unwrap();
        assert_eq!(g.incident_link_count_at(2), Some(2));
        // Removing the hub re-ranks everyone (the survivors drop to 0 links);
        // ties break towards the smallest identifier.
        g.remove_node(id(2)).unwrap();
        assert_eq!(g.highest_degree_member().map(|(i, _)| i), Some(id(0)));
        // Cell recycling: a newborn reusing the hub's cell starts at 0 links.
        g.add_node(id(9), 2).unwrap();
        g.set_out_slot(id(9), 0, id(3)).unwrap();
        g.set_out_slot(id(9), 1, id(1)).unwrap();
        assert_eq!(g.highest_degree_member(), Some((id(9), 2)));
    }

    #[test]
    fn empty_graph_has_no_highest_degree_member() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.highest_degree_member(), None);
        g.set_degree_index(true);
        assert_eq!(g.highest_degree_member(), None);
        g.add_node(id(0), 1).unwrap();
        g.remove_node(id(0)).unwrap();
        assert_eq!(g.highest_degree_member(), None);
    }

    #[test]
    fn bulk_each_excluding_draw_matches_per_entry_calls() {
        let mut g = DynamicGraph::new();
        for raw in 0..20u64 {
            g.add_node(id(raw), 0).unwrap();
        }
        let excludes: Vec<u32> = vec![0, SAMPLE_SKIP, 5, 19, SAMPLE_SKIP, 3];
        let mut bulk = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        g.sample_members_each_excluding_into(&mut rng, &excludes, &mut bulk);
        let mut reference = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for &exclude in &excludes {
            if exclude == SAMPLE_SKIP {
                reference.push(SAMPLE_SKIP);
            } else {
                reference.push(
                    g.sample_member_excluding(&mut rng, exclude)
                        .unwrap_or(SAMPLE_NONE),
                );
            }
        }
        assert_eq!(bulk, reference, "bulk draw must preserve the RNG stream");
        for (&exclude, &drawn) in excludes.iter().zip(&bulk) {
            if exclude != SAMPLE_SKIP {
                assert_ne!(drawn, exclude);
                assert!(g.id_at(drawn).is_some());
            }
        }
        // Single-member graph: the only candidate is the excluded one.
        let mut lone = DynamicGraph::new();
        lone.add_node(id(0), 0).unwrap();
        let mut out = Vec::new();
        lone.sample_members_each_excluding_into(&mut rng, &[0], &mut out);
        assert_eq!(out, vec![SAMPLE_NONE]);
    }

    #[test]
    fn behavior_tags_are_lazy_counted_and_cleared_on_removal() {
        let mut g = DynamicGraph::new();
        for raw in 0..4u64 {
            g.add_node(id(raw), 1).unwrap();
        }
        // Untagged graph: no storage, zero reads everywhere.
        assert!(!g.tags_enabled());
        assert_eq!(g.tagged_member_count(), 0);
        assert_eq!(g.tag_at(0), 0);
        // Clearing an untagged cell must not allocate the tag array.
        g.set_tag_at(0, 0).unwrap();
        assert!(!g.tags_enabled());

        let a = g.dense_index_of(id(1)).unwrap();
        g.set_tag_at(a, 0x11).unwrap();
        assert!(g.tags_enabled());
        assert_eq!(g.tag_at(a), 0x11);
        assert_eq!(g.tagged_member_count(), 1);
        // Re-tagging the same cell does not double-count.
        g.set_tag_at(a, 0x21).unwrap();
        assert_eq!(g.tagged_member_count(), 1);
        // Explicit clear.
        g.set_tag_at(a, 0).unwrap();
        assert_eq!(g.tag_at(a), 0);
        assert_eq!(g.tagged_member_count(), 0);

        // Removal clears the tag so a recycled cell starts untagged.
        g.set_tag_at(a, 0x43).unwrap();
        assert_eq!(g.tagged_member_count(), 1);
        g.remove_node(id(1)).unwrap();
        assert_eq!(g.tagged_member_count(), 0);
        g.add_node(id(9), 1).unwrap();
        let recycled = g.dense_index_of(id(9)).unwrap();
        assert_eq!(recycled, a, "free list recycles the vacated cell");
        assert_eq!(g.tag_at(recycled), 0, "recycled cell must start untagged");

        // Vacant / out-of-range cells.
        assert!(g.set_tag_at(999, 1).is_err());
        assert_eq!(g.tag_at(999), 0);

        // Cells past the tag array (slab grown after allocation) read 0 and
        // can be tagged, growing the array on demand.
        for raw in 10..20u64 {
            g.add_node(id(raw), 1).unwrap();
        }
        let late = g.dense_index_of(id(19)).unwrap();
        assert_eq!(g.tag_at(late), 0);
        g.set_tag_at(late, 0x31).unwrap();
        assert_eq!(g.tag_at(late), 0x31);
        assert_eq!(g.tagged_member_count(), 1);
        g.remove_node(id(19)).unwrap();
        assert_eq!(g.tagged_member_count(), 0);
    }
}
