//! The mutable dynamic graph structure driven by the churn models.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, Result};

/// Identifies one of the `d` out-going connection requests a node owns.
///
/// The paper distinguishes, for every node `v`, between *out-edges* (the
/// connections `v` itself requested when it was born or when regenerating) and
/// *in-edges* (connections requested by other nodes). An [`EdgeSlot`] names one
/// out-edge position of one node; the pair `(owner, slot)` stays stable for the
/// owner's entire lifetime even as the slot gets re-pointed by edge
/// regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeSlot {
    /// Node that owns (requested) the edge.
    pub owner: NodeId,
    /// Index of the request in `0..out_degree(owner)`.
    pub slot: usize,
}

/// Summary of a node removal, returned by [`DynamicGraph::remove_node`].
///
/// The churn models need two pieces of information when a node dies:
///
/// * which of the dead node's own requests were connected (for bookkeeping), and
/// * which out-slots of *surviving* nodes just lost their target — these are the
///   slots that the edge-regeneration rule (models SDGR and PDGR) must re-point
///   to fresh uniform targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedNode {
    /// Identifier of the removed node.
    pub id: NodeId,
    /// Targets the removed node's own out-slots were connected to.
    pub out_targets: Vec<NodeId>,
    /// Out-slots of surviving nodes that pointed at the removed node and are now
    /// empty. Sorted by `(owner, slot)` for determinism.
    pub dangling_slots: Vec<EdgeSlot>,
}

#[derive(Debug, Clone, Default)]
struct NodeRecord {
    /// The node's own connection requests; `None` means the slot is currently
    /// unconnected (its target died and no regeneration happened).
    out_slots: Vec<Option<NodeId>>,
    /// Multiset of nodes holding at least one out-slot pointing at this node,
    /// with multiplicities.
    in_refs: HashMap<NodeId, u32>,
}

impl NodeRecord {
    fn filled_out(&self) -> usize {
        self.out_slots.iter().filter(|s| s.is_some()).count()
    }
}

/// A dynamic graph whose nodes own a fixed array of out-going request slots.
///
/// This is the topology object every model of the paper mutates:
///
/// * joining node `v` calls [`add_node`](Self::add_node) with out-degree `d` and
///   then [`set_out_slot`](Self::set_out_slot) for each request,
/// * a dying node is removed with [`remove_node`](Self::remove_node), which also
///   reports the surviving slots left dangling,
/// * the regeneration rule re-points dangling slots with
///   [`set_out_slot`](Self::set_out_slot).
///
/// For analysis (flooding, expansion) the graph is viewed *undirected*: `u` and
/// `v` are neighbours if any out-slot of `u` points at `v` or vice versa, exactly
/// as in the paper ("the considered graphs are always undirected", Section 3.1).
///
/// # Example
///
/// ```
/// use churn_graph::{DynamicGraph, NodeId};
///
/// # fn main() -> Result<(), churn_graph::GraphError> {
/// let mut g = DynamicGraph::new();
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// g.add_node(a, 1)?;
/// g.add_node(b, 1)?;
/// g.set_out_slot(a, 0, b)?;
/// assert_eq!(g.degree(a), Some(1));
///
/// let removed = g.remove_node(b)?;
/// // a's only request pointed at b, so it is dangling now:
/// assert_eq!(removed.dangling_slots.len(), 1);
/// assert!(g.is_isolated(a).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    nodes: HashMap<NodeId, NodeRecord>,
    filled_slots: usize,
}

impl DynamicGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        DynamicGraph {
            nodes: HashMap::with_capacity(nodes),
            filled_slots: 0,
        }
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` when `id` is alive.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterator over the identifiers of all alive nodes, in arbitrary order.
    ///
    /// Use [`Self::sorted_node_ids`] when deterministic iteration order matters.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// All alive node identifiers in increasing order.
    #[must_use]
    pub fn sorted_node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of currently connected out-slots across all nodes.
    ///
    /// This counts *requests*, not distinct undirected edges: if `u` and `v`
    /// each point a slot at the other, both slots are counted. See
    /// [`Self::distinct_edge_count`] for the undirected count.
    #[must_use]
    pub fn filled_slot_count(&self) -> usize {
        self.filled_slots
    }

    /// Number of distinct undirected edges `{u, v}`.
    ///
    /// Computed on demand in `O(n + m)`.
    #[must_use]
    pub fn distinct_edge_count(&self) -> usize {
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(self.filled_slots);
        for (&u, rec) in &self.nodes {
            for target in rec.out_slots.iter().flatten() {
                let (a, b) = if u <= *target { (u, *target) } else { (*target, u) };
                seen.insert((a, b));
            }
        }
        seen.len()
    }

    /// Adds a node with `out_degree` (initially unconnected) out-slots.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if a node with this identifier is
    /// already alive.
    pub fn add_node(&mut self, id: NodeId, out_degree: usize) -> Result<()> {
        if self.nodes.contains_key(&id) {
            return Err(GraphError::DuplicateNode(id));
        }
        self.nodes.insert(
            id,
            NodeRecord {
                out_slots: vec![None; out_degree],
                in_refs: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Appends an additional (unconnected) out-slot to `id` and returns its index.
    ///
    /// Used by callers whose out-degree is not fixed up front (e.g. Erdős–Rényi
    /// generation or overlay protocols that grow their target out-degree).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not alive.
    pub fn push_out_slot(&mut self, id: NodeId) -> Result<usize> {
        let rec = self.nodes.get_mut(&id).ok_or(GraphError::UnknownNode(id))?;
        rec.out_slots.push(None);
        Ok(rec.out_slots.len() - 1)
    }

    /// Points out-slot `slot` of `owner` at `target`, returning the previous
    /// target of that slot (if any).
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if `owner` or `target` is not alive,
    /// * [`GraphError::SlotOutOfRange`] if `slot >= out_degree(owner)`,
    /// * [`GraphError::SelfLoop`] if `owner == target`.
    pub fn set_out_slot(
        &mut self,
        owner: NodeId,
        slot: usize,
        target: NodeId,
    ) -> Result<Option<NodeId>> {
        if owner == target {
            return Err(GraphError::SelfLoop(owner));
        }
        if !self.nodes.contains_key(&target) {
            return Err(GraphError::UnknownNode(target));
        }
        let prev = {
            let rec = self
                .nodes
                .get_mut(&owner)
                .ok_or(GraphError::UnknownNode(owner))?;
            let len = rec.out_slots.len();
            if slot >= len {
                return Err(GraphError::SlotOutOfRange {
                    node: owner,
                    slot,
                    len,
                });
            }
            rec.out_slots[slot].replace(target)
        };
        if let Some(prev_target) = prev {
            if prev_target != target {
                self.dec_in_ref(prev_target, owner);
                self.inc_in_ref(target, owner);
            }
            // filled count unchanged: slot was already occupied
        } else {
            self.inc_in_ref(target, owner);
            self.filled_slots += 1;
        }
        Ok(prev)
    }

    /// Clears out-slot `slot` of `owner`, returning the target it pointed at.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if `owner` is not alive,
    /// * [`GraphError::SlotOutOfRange`] if `slot >= out_degree(owner)`.
    pub fn clear_out_slot(&mut self, owner: NodeId, slot: usize) -> Result<Option<NodeId>> {
        let prev = {
            let rec = self
                .nodes
                .get_mut(&owner)
                .ok_or(GraphError::UnknownNode(owner))?;
            let len = rec.out_slots.len();
            if slot >= len {
                return Err(GraphError::SlotOutOfRange {
                    node: owner,
                    slot,
                    len,
                });
            }
            rec.out_slots[slot].take()
        };
        if let Some(prev_target) = prev {
            self.dec_in_ref(prev_target, owner);
            self.filled_slots -= 1;
        }
        Ok(prev)
    }

    /// Removes `id` and every edge incident to it.
    ///
    /// Returns a [`RemovedNode`] describing both the dead node's own requests and
    /// the out-slots of surviving nodes that were pointing at it (now cleared).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` is not alive.
    pub fn remove_node(&mut self, id: NodeId) -> Result<RemovedNode> {
        let record = self.nodes.remove(&id).ok_or(GraphError::UnknownNode(id))?;

        let mut out_targets = Vec::with_capacity(record.filled_out());
        for target in record.out_slots.iter().flatten() {
            out_targets.push(*target);
            self.filled_slots -= 1;
            if let Some(rec) = self.nodes.get_mut(target) {
                Self::dec_in_ref_map(&mut rec.in_refs, id);
            }
        }

        let mut dangling = Vec::new();
        let mut owners: Vec<NodeId> = record.in_refs.keys().copied().collect();
        owners.sort_unstable();
        for owner in owners {
            if owner == id {
                continue;
            }
            if let Some(rec) = self.nodes.get_mut(&owner) {
                for (slot, s) in rec.out_slots.iter_mut().enumerate() {
                    if *s == Some(id) {
                        *s = None;
                        self.filled_slots -= 1;
                        dangling.push(EdgeSlot { owner, slot });
                    }
                }
            }
        }
        dangling.sort_unstable();

        Ok(RemovedNode {
            id,
            out_targets,
            dangling_slots: dangling,
        })
    }

    /// The out-slots of `id`, or `None` if `id` is not alive.
    #[must_use]
    pub fn out_slots(&self, id: NodeId) -> Option<&[Option<NodeId>]> {
        self.nodes.get(&id).map(|r| r.out_slots.as_slice())
    }

    /// Number of out-slots `id` owns (connected or not).
    #[must_use]
    pub fn out_slot_count(&self, id: NodeId) -> Option<usize> {
        self.nodes.get(&id).map(|r| r.out_slots.len())
    }

    /// Number of currently connected out-slots of `id`.
    #[must_use]
    pub fn out_degree(&self, id: NodeId) -> Option<usize> {
        self.nodes.get(&id).map(NodeRecord::filled_out)
    }

    /// Indices of the currently unconnected out-slots of `id`.
    #[must_use]
    pub fn empty_out_slots(&self, id: NodeId) -> Option<Vec<usize>> {
        self.nodes.get(&id).map(|r| {
            r.out_slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.is_none().then_some(i))
                .collect()
        })
    }

    /// Distinct nodes that hold at least one out-slot pointing at `id`.
    #[must_use]
    pub fn in_neighbors(&self, id: NodeId) -> Option<Vec<NodeId>> {
        self.nodes.get(&id).map(|r| {
            let mut v: Vec<NodeId> = r.in_refs.keys().copied().collect();
            v.sort_unstable();
            v
        })
    }

    /// Total number of out-slots (of other nodes) pointing at `id`, with
    /// multiplicity. This is the "in-degree" in the sense of requests received.
    #[must_use]
    pub fn in_request_count(&self, id: NodeId) -> Option<usize> {
        self.nodes
            .get(&id)
            .map(|r| r.in_refs.values().map(|&c| c as usize).sum())
    }

    /// Distinct undirected neighbours of `id` (union of out-targets and
    /// in-referencing nodes), sorted.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let rec = self.nodes.get(&id)?;
        let mut set: BTreeMap<NodeId, ()> = BTreeMap::new();
        for t in rec.out_slots.iter().flatten() {
            set.insert(*t, ());
        }
        for t in rec.in_refs.keys() {
            set.insert(*t, ());
        }
        Some(set.into_keys().collect())
    }

    /// Number of distinct undirected neighbours of `id`.
    #[must_use]
    pub fn degree(&self, id: NodeId) -> Option<usize> {
        self.neighbors(id).map(|n| n.len())
    }

    /// Returns `true` when `id` currently has no incident edges at all (its own
    /// requests are all dangling and no other node points at it). This is the
    /// notion of *isolated node* of Lemmas 3.5 and 4.10 of the paper.
    ///
    /// Returns `None` if `id` is not alive.
    #[must_use]
    pub fn is_isolated(&self, id: NodeId) -> Option<bool> {
        let rec = self.nodes.get(&id)?;
        Some(rec.filled_out() == 0 && rec.in_refs.is_empty())
    }

    /// Returns `true` when `u` and `v` are adjacent (in either direction).
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let Some(ru) = self.nodes.get(&u) else {
            return false;
        };
        if ru.out_slots.iter().flatten().any(|&t| t == v) {
            return true;
        }
        ru.in_refs.contains_key(&v)
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks that the in-reference multiset of every node exactly mirrors the
    /// out-slots pointing at it, that no slot points at a dead node, that no
    /// self-loops exist, and that the filled-slot counter is accurate.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when an invariant is violated.
    pub fn assert_invariants(&self) {
        let mut expected_in: HashMap<NodeId, HashMap<NodeId, u32>> = HashMap::new();
        let mut filled = 0usize;
        for (&u, rec) in &self.nodes {
            for target in rec.out_slots.iter().flatten() {
                assert!(
                    self.nodes.contains_key(target),
                    "out-slot of {u} points at dead node {target}"
                );
                assert_ne!(u, *target, "self-loop at {u}");
                filled += 1;
                *expected_in.entry(*target).or_default().entry(u).or_insert(0) += 1;
            }
        }
        assert_eq!(
            filled, self.filled_slots,
            "filled-slot counter out of sync (actual {filled}, cached {})",
            self.filled_slots
        );
        for (&v, rec) in &self.nodes {
            let expected = expected_in.remove(&v).unwrap_or_default();
            assert_eq!(
                rec.in_refs, expected,
                "in-reference multiset of {v} is inconsistent"
            );
        }
        assert!(
            expected_in.is_empty(),
            "in-references recorded for dead nodes: {expected_in:?}"
        );
    }

    fn inc_in_ref(&mut self, target: NodeId, owner: NodeId) {
        if let Some(rec) = self.nodes.get_mut(&target) {
            *rec.in_refs.entry(owner).or_insert(0) += 1;
        }
    }

    fn dec_in_ref(&mut self, target: NodeId, owner: NodeId) {
        if let Some(rec) = self.nodes.get_mut(&target) {
            Self::dec_in_ref_map(&mut rec.in_refs, owner);
        }
    }

    fn dec_in_ref_map(map: &mut HashMap<NodeId, u32>, owner: NodeId) {
        if let Some(count) = map.get_mut(&owner) {
            *count -= 1;
            if *count == 0 {
                map.remove(&owner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn triangle() -> DynamicGraph {
        // a -> b, b -> c, c -> a
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 1).unwrap();
        }
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(1), 0, id(2)).unwrap();
        g.set_out_slot(id(2), 0, id(0)).unwrap();
        g
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = DynamicGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.filled_slot_count(), 0);
        assert_eq!(g.distinct_edge_count(), 0);
        g.assert_invariants();
    }

    #[test]
    fn add_node_rejects_duplicates() {
        let mut g = DynamicGraph::new();
        g.add_node(id(1), 3).unwrap();
        assert_eq!(g.add_node(id(1), 3), Err(GraphError::DuplicateNode(id(1))));
    }

    #[test]
    fn set_out_slot_connects_and_reports_previous_target() {
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 2).unwrap();
        }
        assert_eq!(g.set_out_slot(id(0), 0, id(1)).unwrap(), None);
        assert_eq!(g.set_out_slot(id(0), 0, id(2)).unwrap(), Some(id(1)));
        assert_eq!(g.degree(id(1)), Some(0));
        assert_eq!(g.degree(id(2)), Some(1));
        assert_eq!(g.filled_slot_count(), 1);
        g.assert_invariants();
    }

    #[test]
    fn set_out_slot_same_target_is_idempotent() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        assert_eq!(g.set_out_slot(id(0), 0, id(1)).unwrap(), Some(id(1)));
        assert_eq!(g.filled_slot_count(), 1);
        assert_eq!(g.in_request_count(id(1)), Some(1));
        g.assert_invariants();
    }

    #[test]
    fn set_out_slot_validates_arguments() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        assert_eq!(
            g.set_out_slot(id(0), 0, id(0)),
            Err(GraphError::SelfLoop(id(0)))
        );
        assert_eq!(
            g.set_out_slot(id(0), 5, id(1)),
            Err(GraphError::SlotOutOfRange {
                node: id(0),
                slot: 5,
                len: 1
            })
        );
        assert_eq!(
            g.set_out_slot(id(0), 0, id(9)),
            Err(GraphError::UnknownNode(id(9)))
        );
        assert_eq!(
            g.set_out_slot(id(9), 0, id(1)),
            Err(GraphError::UnknownNode(id(9)))
        );
    }

    #[test]
    fn clear_out_slot_disconnects() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 1).unwrap();
        g.add_node(id(1), 1).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        assert_eq!(g.clear_out_slot(id(0), 0).unwrap(), Some(id(1)));
        assert_eq!(g.clear_out_slot(id(0), 0).unwrap(), None);
        assert!(g.is_isolated(id(1)).unwrap());
        assert_eq!(g.filled_slot_count(), 0);
        g.assert_invariants();
    }

    #[test]
    fn neighbors_union_out_and_in_edges() {
        let g = triangle();
        // Every node has one out-target and one in-reference, distinct.
        for raw in 0..3 {
            assert_eq!(g.degree(id(raw)), Some(2));
            assert_eq!(g.out_degree(id(raw)), Some(1));
        }
        assert_eq!(g.distinct_edge_count(), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        assert!(g.has_edge(id(0), id(1)));
        assert!(g.has_edge(id(1), id(0)));
        assert!(!g.has_edge(id(0), id(99)));
    }

    #[test]
    fn remove_node_reports_dangling_slots() {
        let mut g = DynamicGraph::new();
        for raw in 0..4 {
            g.add_node(id(raw), 2).unwrap();
        }
        // 1, 2, 3 all point at 0; 0 points at 1.
        g.set_out_slot(id(1), 0, id(0)).unwrap();
        g.set_out_slot(id(2), 1, id(0)).unwrap();
        g.set_out_slot(id(3), 0, id(0)).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();

        let removed = g.remove_node(id(0)).unwrap();
        assert_eq!(removed.id, id(0));
        assert_eq!(removed.out_targets, vec![id(1)]);
        assert_eq!(
            removed.dangling_slots,
            vec![
                EdgeSlot {
                    owner: id(1),
                    slot: 0
                },
                EdgeSlot {
                    owner: id(2),
                    slot: 1
                },
                EdgeSlot {
                    owner: id(3),
                    slot: 0
                },
            ]
        );
        assert!(!g.contains(id(0)));
        assert_eq!(g.filled_slot_count(), 0);
        for raw in 1..4 {
            assert!(g.is_isolated(id(raw)).unwrap());
        }
        g.assert_invariants();
    }

    #[test]
    fn remove_unknown_node_errors() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.remove_node(id(0)), Err(GraphError::UnknownNode(id(0))));
    }

    #[test]
    fn multiple_slots_to_same_target_tracked_with_multiplicity() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 3).unwrap();
        g.add_node(id(1), 3).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(0), 1, id(1)).unwrap();
        assert_eq!(g.in_request_count(id(1)), Some(2));
        assert_eq!(g.degree(id(1)), Some(1));
        g.clear_out_slot(id(0), 0).unwrap();
        assert_eq!(g.in_request_count(id(1)), Some(1));
        assert!(!g.is_isolated(id(1)).unwrap());
        g.clear_out_slot(id(0), 1).unwrap();
        assert!(g.is_isolated(id(1)).unwrap());
        g.assert_invariants();
    }

    #[test]
    fn push_out_slot_grows_out_degree() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 0).unwrap();
        g.add_node(id(1), 0).unwrap();
        let s = g.push_out_slot(id(0)).unwrap();
        assert_eq!(s, 0);
        g.set_out_slot(id(0), s, id(1)).unwrap();
        assert_eq!(g.out_slot_count(id(0)), Some(1));
        assert_eq!(g.degree(id(1)), Some(1));
        assert_eq!(g.push_out_slot(id(9)), Err(GraphError::UnknownNode(id(9))));
    }

    #[test]
    fn empty_out_slots_lists_dangling_requests() {
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 3).unwrap();
        g.add_node(id(1), 3).unwrap();
        g.set_out_slot(id(0), 1, id(1)).unwrap();
        assert_eq!(g.empty_out_slots(id(0)), Some(vec![0, 2]));
        assert_eq!(g.empty_out_slots(id(7)), None);
    }

    #[test]
    fn isolated_after_neighbor_death_without_regeneration() {
        // The scenario behind Lemma 3.5: a node whose only connections die.
        let mut g = DynamicGraph::new();
        g.add_node(id(0), 2).unwrap();
        g.add_node(id(1), 2).unwrap();
        g.add_node(id(2), 2).unwrap();
        g.set_out_slot(id(0), 0, id(1)).unwrap();
        g.set_out_slot(id(0), 1, id(2)).unwrap();
        assert!(!g.is_isolated(id(0)).unwrap());
        g.remove_node(id(1)).unwrap();
        g.remove_node(id(2)).unwrap();
        assert!(g.is_isolated(id(0)).unwrap());
        g.assert_invariants();
    }

    #[test]
    fn sorted_node_ids_are_sorted() {
        let mut g = DynamicGraph::new();
        for raw in [5u64, 1, 9, 3] {
            g.add_node(id(raw), 0).unwrap();
        }
        assert_eq!(g.sorted_node_ids(), vec![id(1), id(3), id(5), id(9)]);
    }
}
