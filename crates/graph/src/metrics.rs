//! Degree statistics and simple structural metrics of snapshots.

use serde::{Deserialize, Serialize};

use crate::Snapshot;

/// Summary statistics of the degree sequence of a snapshot.
///
/// The paper's models keep the expected degree at `d` (without regeneration,
/// Lemma 6.1) or exactly `d` out-requests per node (with regeneration), while the
/// maximum degree can grow to `O(log n)` (Section 5); these statistics let the
/// experiments verify both facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of nodes observed.
    pub nodes: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population variance of the degree.
    pub variance: f64,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

impl DegreeStats {
    /// Standard deviation of the degree.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Fraction of isolated nodes (0 for an empty snapshot).
    #[must_use]
    pub fn isolated_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.isolated as f64 / self.nodes as f64
        }
    }
}

/// Computes [`DegreeStats`] of a snapshot. Returns a zeroed record for an empty
/// snapshot.
#[must_use]
pub fn degree_stats(snapshot: &Snapshot) -> DegreeStats {
    let n = snapshot.len();
    if n == 0 {
        return DegreeStats {
            nodes: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            variance: 0.0,
            isolated: 0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0f64;
    let mut isolated = 0usize;
    for i in 0..n {
        let deg = snapshot.degree_of(i);
        min = min.min(deg);
        max = max.max(deg);
        sum += deg;
        sum_sq += (deg * deg) as f64;
        if deg == 0 {
            isolated += 1;
        }
    }
    let mean = sum as f64 / n as f64;
    let variance = sum_sq / n as f64 - mean * mean;
    DegreeStats {
        nodes: n,
        min,
        max,
        mean,
        variance: variance.max(0.0),
        isolated,
    }
}

/// Histogram of node degrees: `histogram[k]` is the number of nodes with degree
/// exactly `k`. The vector's length is `max_degree + 1` (empty for an empty
/// snapshot).
#[must_use]
pub fn degree_histogram(snapshot: &Snapshot) -> Vec<usize> {
    let n = snapshot.len();
    if n == 0 {
        return Vec::new();
    }
    let max = (0..n).map(|i| snapshot.degree_of(i)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for i in 0..n {
        hist[snapshot.degree_of(i)] += 1;
    }
    hist
}

/// Average degree of a snapshot (0 for an empty snapshot).
#[must_use]
pub fn average_degree(snapshot: &Snapshot) -> f64 {
    if snapshot.is_empty() {
        0.0
    } else {
        snapshot.total_degree() as f64 / snapshot.len() as f64
    }
}

/// Edge density: number of edges over `n(n-1)/2` (0 for graphs with < 2 nodes).
#[must_use]
pub fn edge_density(snapshot: &Snapshot) -> f64 {
    let n = snapshot.len();
    if n < 2 {
        return 0.0;
    }
    snapshot.edge_count() as f64 / ((n * (n - 1)) as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_snapshot_are_zero() {
        let snap = Snapshot::from_edges(0, &[]);
        let stats = degree_stats(&snap);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.isolated_fraction(), 0.0);
        assert!(degree_histogram(&snap).is_empty());
        assert_eq!(average_degree(&snap), 0.0);
        assert_eq!(edge_density(&snap), 0.0);
    }

    #[test]
    fn stats_of_star_graph() {
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (0, i)).collect();
        let snap = Snapshot::from_edges(6, &edges);
        let stats = degree_stats(&snap);
        assert_eq!(stats.nodes, 6);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 5);
        assert!((stats.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(stats.isolated, 0);
        assert!(stats.std_dev() > 0.0);
    }

    #[test]
    fn stats_count_isolated_nodes() {
        let snap = Snapshot::from_edges(5, &[(0, 1)]);
        let stats = degree_stats(&snap);
        assert_eq!(stats.isolated, 3);
        assert!((stats.isolated_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let snap = Snapshot::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        let hist = degree_histogram(&snap);
        assert_eq!(hist.iter().sum::<usize>(), 7);
        assert_eq!(hist[0], 1, "node 6 is isolated");
        assert_eq!(hist[1], 2, "nodes 4 and 5 have degree 1");
        assert_eq!(hist[2], 4, "the cycle nodes have degree 2");
    }

    #[test]
    fn average_degree_and_density_of_complete_graph() {
        let edges: Vec<(usize, usize)> = (0..5usize)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let snap = Snapshot::from_edges(5, &edges);
        assert!((average_degree(&snap) - 4.0).abs() < 1e-12);
        assert!((edge_density(&snap) - 1.0).abs() < 1e-12);
    }
}
