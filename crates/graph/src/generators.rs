//! Static random and deterministic graph generators.
//!
//! These serve as baselines and test fixtures:
//!
//! * [`d_out_random_graph`] is the static graph of the paper's Lemma B.1 ("the
//!   static random graph in which each node picks `d` random neighbors is a
//!   Θ(1)-expander w.h.p. for `d >= 3`") — the natural comparison point for the
//!   dynamic models, since SDG/PDG degrade it by churn while SDGR/PDGR maintain
//!   it;
//! * [`erdos_renyi`] gives the classical `G(n, p)` model;
//! * [`ring`], [`path`], [`complete`] and [`star`] are deterministic fixtures
//!   used throughout the test suites.

use rand::Rng;

use crate::{DynamicGraph, NodeId};

/// Static `d`-out random graph on `n` nodes: every node points `d` out-slots at
/// uniformly random *other* nodes (with replacement across slots, so parallel
/// requests may collapse into a single undirected edge).
///
/// This is the model of the paper's Lemma B.1.
///
/// # Panics
///
/// Panics if `n < 2` and `d > 0` (no valid target exists).
#[must_use]
pub fn d_out_random_graph<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> DynamicGraph {
    assert!(
        d == 0 || n >= 2,
        "a d-out graph with d > 0 needs at least two nodes"
    );
    let mut g = DynamicGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64), d)
            .expect("fresh ids are unique");
    }
    for i in 0..n {
        let u = NodeId::new(i as u64);
        for slot in 0..d {
            let target = loop {
                let t = rng.gen_range(0..n);
                if t != i {
                    break NodeId::new(t as u64);
                }
            };
            g.set_out_slot(u, slot, target)
                .expect("slot and target are valid");
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`. Edges are attached as out-slots of the lower-indexed
/// endpoint.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = DynamicGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64), 0)
            .expect("fresh ids are unique");
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                let u = NodeId::new(i as u64);
                let slot = g.push_out_slot(u).expect("node exists");
                g.set_out_slot(u, slot, NodeId::new(j as u64))
                    .expect("valid edge");
            }
        }
    }
    g
}

/// Deterministic ring (cycle) on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> DynamicGraph {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut g = DynamicGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64), 1).expect("unique ids");
    }
    for i in 0..n {
        let next = NodeId::new(((i + 1) % n) as u64);
        g.set_out_slot(NodeId::new(i as u64), 0, next)
            .expect("valid edge");
    }
    g
}

/// Deterministic path on `n >= 1` nodes.
#[must_use]
pub fn path(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64), 1).expect("unique ids");
    }
    for i in 0..n.saturating_sub(1) {
        g.set_out_slot(NodeId::new(i as u64), 0, NodeId::new((i + 1) as u64))
            .expect("valid edge");
    }
    g
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64), n.saturating_sub(i + 1))
            .expect("unique ids");
    }
    for i in 0..n {
        let u = NodeId::new(i as u64);
        for (slot, j) in ((i + 1)..n).enumerate() {
            g.set_out_slot(u, slot, NodeId::new(j as u64))
                .expect("valid edge");
        }
    }
    g
}

/// Star graph: node 0 is connected to every other node.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize) -> DynamicGraph {
    assert!(n >= 2, "a star needs at least two nodes");
    let mut g = DynamicGraph::with_capacity(n);
    g.add_node(NodeId::new(0), n - 1).expect("unique ids");
    for i in 1..n {
        g.add_node(NodeId::new(i as u64), 0).expect("unique ids");
    }
    for i in 1..n {
        g.set_out_slot(NodeId::new(0), i - 1, NodeId::new(i as u64))
            .expect("valid edge");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use crate::Snapshot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn d_out_graph_has_exactly_d_filled_slots_per_node() {
        let g = d_out_random_graph(100, 5, &mut rng());
        assert_eq!(g.len(), 100);
        assert_eq!(g.filled_slot_count(), 500);
        for id in g.node_ids() {
            assert_eq!(g.out_degree(id), Some(5));
        }
        g.assert_invariants();
    }

    #[test]
    fn d_out_graph_with_d_at_least_3_is_connected_whp() {
        // Lemma B.1: the static 3-out random graph is an expander (in particular
        // connected) w.h.p.; with n = 300 a disconnection would be astronomically
        // unlikely, so a seeded test is stable.
        let g = d_out_random_graph(300, 3, &mut rng());
        let comps = connected_components(&Snapshot::of(&g));
        assert!(
            comps.is_connected(),
            "3-out random graph should be connected"
        );
    }

    #[test]
    fn d_out_graph_zero_degree_is_all_isolated() {
        let g = d_out_random_graph(10, 0, &mut rng());
        for id in g.node_ids() {
            assert!(g.is_isolated(id).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn d_out_graph_rejects_single_node_with_positive_degree() {
        let _ = d_out_random_graph(1, 2, &mut rng());
    }

    #[test]
    fn erdos_renyi_edge_count_matches_expectation() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng());
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.distinct_edge_count() as f64;
        assert!(
            (actual - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edge count {actual} too far from expectation {expected}"
        );
        g.assert_invariants();
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(20, 0.0, &mut rng());
        assert_eq!(empty.distinct_edge_count(), 0);
        let full = erdos_renyi(20, 1.0, &mut rng());
        assert_eq!(full.distinct_edge_count(), 20 * 19 / 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn erdos_renyi_rejects_invalid_probability() {
        let _ = erdos_renyi(10, 1.5, &mut rng());
    }

    #[test]
    fn ring_and_path_shapes() {
        let ring_g = ring(10);
        assert_eq!(ring_g.distinct_edge_count(), 10);
        for id in ring_g.node_ids() {
            assert_eq!(ring_g.degree(id), Some(2));
        }
        let path_g = path(10);
        assert_eq!(path_g.distinct_edge_count(), 9);
        assert_eq!(path_g.degree(NodeId::new(0)), Some(1));
        assert_eq!(path_g.degree(NodeId::new(5)), Some(2));
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(8);
        assert_eq!(g.distinct_edge_count(), 8 * 7 / 2);
        for id in g.node_ids() {
            assert_eq!(g.degree(id), Some(7));
        }
        g.assert_invariants();
    }

    #[test]
    fn star_graph_degrees() {
        let g = star(9);
        assert_eq!(g.degree(NodeId::new(0)), Some(8));
        for i in 1..9 {
            assert_eq!(g.degree(NodeId::new(i)), Some(1));
        }
        assert_eq!(g.distinct_edge_count(), 8);
    }

    #[test]
    fn path_of_one_node_has_no_edges() {
        let g = path(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.distinct_edge_count(), 0);
    }
}
