//! Immutable, compact snapshots of a [`DynamicGraph`].

use crate::{DynamicGraph, NodeId};

/// An immutable view of a dynamic graph at one instant, stored in CSR
/// (compressed sparse row) layout with deduplicated undirected adjacency.
///
/// A snapshot is what the paper calls `G_t`: the graph observed at a specific
/// round/time. All analysis routines ([`crate::traversal`], [`crate::expansion`],
/// [`crate::metrics`]) operate on snapshots because they need stable integer
/// indices `0..n` rather than sparse [`NodeId`]s.
///
/// Node identifiers are sorted increasingly, so index order is deterministic for
/// a given node set regardless of hash-map iteration order.
///
/// # Example
///
/// ```
/// use churn_graph::{DynamicGraph, NodeId, Snapshot};
///
/// # fn main() -> Result<(), churn_graph::GraphError> {
/// let mut g = DynamicGraph::new();
/// for raw in 0..3 {
///     g.add_node(NodeId::new(raw), 1)?;
/// }
/// g.set_out_slot(NodeId::new(0), 0, NodeId::new(1))?;
/// let snap = Snapshot::of(&g);
/// assert_eq!(snap.len(), 3);
/// assert_eq!(snap.edge_count(), 1);
/// assert_eq!(snap.neighbors_of(0), &[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    ids: Vec<NodeId>,
    offsets: Vec<usize>,
    adjacency: Vec<usize>,
}

impl Snapshot {
    /// Builds a snapshot of the current state of `graph`.
    ///
    /// Hash-free: the graph's dense slab indices are translated to compact
    /// snapshot positions through a plain lookup array, so construction costs
    /// one `O(n log n)` identifier sort (snapshot indices are ordered by
    /// `NodeId`) plus a single `O(n + m log d)` adjacency pass. While the
    /// graph reports [`DynamicGraph::id_sorted_layout`] — no cell ever
    /// recycled, identifiers inserted in increasing order, as with the static
    /// generators and any model before its first churn — the sort is skipped
    /// entirely: a slab walk in index order already yields the nodes in
    /// identifier order, making construction `O(n + m log d)`.
    #[must_use]
    pub fn of(graph: &DynamicGraph) -> Self {
        // Pair every alive node's id with its slab index, ordered by id so
        // snapshot indices are deterministic regardless of slab layout.
        let mut nodes: Vec<(NodeId, u32)> = Vec::with_capacity(graph.len());
        if graph.id_sorted_layout() {
            // Monotone fast path: occupied cells in index order are id-sorted.
            nodes.extend(
                (0..graph.slab_len() as u32).filter_map(|idx| graph.id_at(idx).map(|id| (id, idx))),
            );
            debug_assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0));
        } else {
            nodes.extend(
                graph
                    .member_indices()
                    .iter()
                    .map(|&idx| (graph.id_at(idx).expect("member cells are occupied"), idx)),
            );
            nodes.sort_unstable_by_key(|&(id, _)| id);
        }

        // slab index -> snapshot position, as a dense array (no hashing).
        let mut slab_to_snap: Vec<u32> = vec![u32::MAX; graph.slab_len()];
        for (pos, &(_, idx)) in nodes.iter().enumerate() {
            slab_to_snap[idx as usize] = pos as u32;
        }

        let mut ids = Vec::with_capacity(nodes.len());
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut adjacency = Vec::with_capacity(graph.filled_slot_count());
        let mut dense_scratch: Vec<u32> = Vec::new();
        let mut list_scratch: Vec<usize> = Vec::new();
        offsets.push(0);
        for &(id, idx) in &nodes {
            ids.push(id);
            dense_scratch.clear();
            graph.neighbors_dense_into(idx, &mut dense_scratch);
            list_scratch.clear();
            list_scratch.extend(
                dense_scratch
                    .iter()
                    .map(|&nb| slab_to_snap[nb as usize] as usize),
            );
            list_scratch.sort_unstable();
            list_scratch.dedup();
            adjacency.extend_from_slice(&list_scratch);
            offsets.push(adjacency.len());
        }

        Snapshot {
            ids,
            offsets,
            adjacency,
        }
    }

    /// Builds a snapshot like [`Snapshot::of`], sharding the adjacency pass
    /// across up to `threads` rayon workers (`0` = one shard per pool
    /// thread). The identifier ordering pass stays sequential; each worker
    /// translates, sorts and deduplicates the rows of one contiguous chunk of
    /// snapshot positions into a private buffer, and the buffers concatenate
    /// in chunk order — so the result is **identical to [`Snapshot::of`] at
    /// any thread count**. This is the rebuild path incremental observers
    /// fall back to when a churn window touched too much of the graph for
    /// patching to win.
    #[must_use]
    pub fn of_with_threads(graph: &DynamicGraph, threads: usize) -> Self {
        let threads = if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        };
        let n = graph.len();
        if threads <= 1 || n < 1 << 14 {
            return Self::of(graph);
        }
        Self::of_sharded(graph, threads)
    }

    /// The sharded body of [`Snapshot::of_with_threads`], without the
    /// small-size fallback (separated so tests can exercise the parallel
    /// path at any size).
    fn of_sharded(graph: &DynamicGraph, threads: usize) -> Self {
        let n = graph.len();
        let mut nodes: Vec<(NodeId, u32)> = Vec::with_capacity(n);
        if graph.id_sorted_layout() {
            nodes.extend(
                (0..graph.slab_len() as u32).filter_map(|idx| graph.id_at(idx).map(|id| (id, idx))),
            );
        } else {
            nodes.extend(
                graph
                    .member_indices()
                    .iter()
                    .map(|&idx| (graph.id_at(idx).expect("member cells are occupied"), idx)),
            );
            nodes.sort_unstable_by_key(|&(id, _)| id);
        }
        let mut slab_to_snap: Vec<u32> = vec![u32::MAX; graph.slab_len()];
        for (pos, &(_, idx)) in nodes.iter().enumerate() {
            slab_to_snap[idx as usize] = pos as u32;
        }
        let slab_to_snap = &slab_to_snap;

        // Chunked fork-join: worker i owns snapshot positions
        // [i*chunk, (i+1)*chunk) and writes (adjacency, per-row degrees) into
        // its private slot.
        let chunk = n.div_ceil(threads).max(1);
        let mut shards: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        shards.resize_with(nodes.len().div_ceil(chunk), Default::default);
        rayon::scope(|s| {
            for (slice, shard) in nodes.chunks(chunk).zip(shards.iter_mut()) {
                s.spawn(move |_| {
                    let (adjacency, degrees) = shard;
                    let mut dense_scratch: Vec<u32> = Vec::new();
                    for &(_, idx) in slice {
                        dense_scratch.clear();
                        graph.neighbors_dense_into(idx, &mut dense_scratch);
                        let start = adjacency.len();
                        adjacency.extend(
                            dense_scratch
                                .iter()
                                .map(|&nb| slab_to_snap[nb as usize] as usize),
                        );
                        adjacency[start..].sort_unstable();
                        let mut write = start;
                        for read in start..adjacency.len() {
                            if write == start || adjacency[read] != adjacency[write - 1] {
                                adjacency[write] = adjacency[read];
                                write += 1;
                            }
                        }
                        adjacency.truncate(write);
                        degrees.push(write - start);
                    }
                });
            }
        });

        let ids: Vec<NodeId> = nodes.iter().map(|&(id, _)| id).collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency = Vec::with_capacity(shards.iter().map(|(a, _)| a.len()).sum());
        offsets.push(0);
        for (shard_adj, degrees) in &shards {
            for &deg in degrees {
                offsets.push(offsets.last().unwrap() + deg);
            }
            adjacency.extend_from_slice(shard_adj);
        }
        Snapshot {
            ids,
            offsets,
            adjacency,
        }
    }

    /// Assembles a snapshot from pre-built CSR parts: `ids` strictly
    /// increasing, `offsets` of length `ids.len() + 1` starting at 0 and
    /// non-decreasing, every row of `adjacency` sorted and deduplicated. This
    /// is the hand-off point for observers that maintain the CSR arrays
    /// incrementally (`churn-observe`'s `IncrementalSnapshot`) and only
    /// materialise a `Snapshot` when an analysis needs one.
    ///
    /// # Panics
    ///
    /// Panics when the shape is inconsistent (length/ordering violations);
    /// full row-level validation runs under `debug_assertions` only.
    #[must_use]
    pub fn from_csr_parts(ids: Vec<NodeId>, offsets: Vec<usize>, adjacency: Vec<usize>) -> Self {
        assert_eq!(
            offsets.len(),
            ids.len() + 1,
            "offsets must have n + 1 entries"
        );
        assert_eq!(offsets.first(), Some(&0), "offsets must start at 0");
        assert_eq!(
            offsets.last(),
            Some(&adjacency.len()),
            "offsets must end at the adjacency length"
        );
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        debug_assert!(
            offsets.windows(2).all(|w| {
                let row = &adjacency[w[0]..w[1]];
                row.windows(2).all(|p| p[0] < p[1]) && row.iter().all(|&j| j < ids.len())
            }),
            "every adjacency row must be sorted, deduplicated and in range"
        );
        Snapshot {
            ids,
            offsets,
            adjacency,
        }
    }

    /// Builds a snapshot directly from an explicit undirected edge list over
    /// `0..n` indices. Mostly useful in tests and for static baselines.
    ///
    /// Duplicate edges and self-loops are ignored.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let ids: Vec<NodeId> = (0..n as u64).map(NodeId::new).collect();
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v || u >= n || v >= n {
                continue;
            }
            lists[u].push(v);
            lists[v].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency = Vec::new();
        offsets.push(0);
        for list in &mut lists {
            list.sort_unstable();
            list.dedup();
            adjacency.extend_from_slice(list);
            offsets.push(adjacency.len());
        }
        Snapshot {
            ids,
            offsets,
            adjacency,
        }
    }

    /// Number of nodes in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when the snapshot has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// The node identifier at compact index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn id_of(&self, i: usize) -> NodeId {
        self.ids[i]
    }

    /// All node identifiers, in increasing order (index order).
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The compact index of `id`, or `None` if `id` is not in the snapshot.
    ///
    /// `O(log n)` binary search over the sorted identifier array.
    #[must_use]
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Returns `true` when `id` is part of the snapshot.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.index_of(id).is_some()
    }

    /// Neighbour indices of the node at index `i` (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn neighbors_of(&self, i: usize) -> &[usize] {
        &self.adjacency[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Neighbour identifiers of node `id`, or `None` if `id` is not present.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let i = self.index_of(id)?;
        Some(self.neighbors_of(i).iter().map(|&j| self.ids[j]).collect())
    }

    /// Degree (number of distinct neighbours) of the node at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn degree_of(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Degree of node `id`, or `None` if `id` is not present.
    #[must_use]
    pub fn degree(&self, id: NodeId) -> Option<usize> {
        self.index_of(id).map(|i| self.degree_of(i))
    }

    /// Returns `true` when nodes at indices `i` and `j` are adjacent.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.neighbors_of(i).binary_search(&j).is_ok()
    }

    /// Iterator over all undirected edges as index pairs `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len()).flat_map(move |i| {
            self.neighbors_of(i)
                .iter()
                .copied()
                .filter(move |&j| i < j)
                .map(move |j| (i, j))
        })
    }

    /// Indices of nodes with no neighbours (isolated in this snapshot).
    #[must_use]
    pub fn isolated_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.degree_of(i) == 0)
            .collect()
    }

    /// Sum of all degrees (twice the edge count).
    #[must_use]
    pub fn total_degree(&self) -> usize {
        self.adjacency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphError;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn path_graph(n: u64) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for raw in 0..n {
            g.add_node(id(raw), 1).unwrap();
        }
        for raw in 0..n - 1 {
            g.set_out_slot(id(raw), 0, id(raw + 1)).unwrap();
        }
        g
    }

    #[test]
    fn snapshot_of_empty_graph() {
        let snap = Snapshot::of(&DynamicGraph::new());
        assert!(snap.is_empty());
        assert_eq!(snap.edge_count(), 0);
        assert!(snap.isolated_indices().is_empty());
    }

    #[test]
    fn snapshot_indices_follow_sorted_ids() {
        let mut g = DynamicGraph::new();
        for raw in [7u64, 2, 5] {
            g.add_node(id(raw), 0).unwrap();
        }
        let snap = Snapshot::of(&g);
        assert_eq!(snap.ids(), &[id(2), id(5), id(7)]);
        assert_eq!(snap.index_of(id(5)), Some(1));
        assert_eq!(snap.id_of(2), id(7));
        assert_eq!(snap.index_of(id(99)), None);
    }

    #[test]
    fn snapshot_adjacency_is_undirected_and_deduplicated() -> Result<(), GraphError> {
        let mut g = DynamicGraph::new();
        for raw in 0..3 {
            g.add_node(id(raw), 2)?;
        }
        // Two parallel requests 0 -> 1 and one back-request 1 -> 0 collapse to a
        // single undirected edge {0, 1}.
        g.set_out_slot(id(0), 0, id(1))?;
        g.set_out_slot(id(0), 1, id(1))?;
        g.set_out_slot(id(1), 0, id(0))?;
        g.set_out_slot(id(2), 0, id(1))?;
        let snap = Snapshot::of(&g);
        assert_eq!(snap.edge_count(), 2);
        assert_eq!(snap.neighbors_of(0), &[1]);
        assert_eq!(snap.neighbors_of(1), &[0, 2]);
        assert!(snap.adjacent(0, 1));
        assert!(snap.adjacent(1, 0));
        assert!(!snap.adjacent(0, 2));
        Ok(())
    }

    #[test]
    fn path_snapshot_degrees_and_edges() {
        let snap = Snapshot::of(&path_graph(5));
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.edge_count(), 4);
        assert_eq!(snap.degree_of(0), 1);
        assert_eq!(snap.degree_of(2), 2);
        assert_eq!(snap.total_degree(), 8);
        let edges: Vec<(usize, usize)> = snap.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn neighbors_by_id_translate_indices() {
        let snap = Snapshot::of(&path_graph(3));
        assert_eq!(snap.neighbors(id(1)), Some(vec![id(0), id(2)]));
        assert_eq!(snap.neighbors(id(42)), None);
        assert_eq!(snap.degree(id(0)), Some(1));
    }

    #[test]
    fn isolated_indices_found() {
        let mut g = path_graph(3);
        g.add_node(id(10), 0).unwrap();
        let snap = Snapshot::of(&g);
        assert_eq!(snap.isolated_indices(), vec![3]);
    }

    #[test]
    fn fast_and_sorting_paths_agree_across_recycling() {
        // Build the same logical graph twice: once with a monotone slab (fast
        // path), once with recycled cells and out-of-order insertions (slow
        // path). The snapshots must be identical.
        let mut monotone = DynamicGraph::new();
        for raw in 0..6 {
            monotone.add_node(id(raw), 1).unwrap();
        }
        for raw in 0..5 {
            monotone.set_out_slot(id(raw), 0, id(raw + 1)).unwrap();
        }
        assert!(monotone.id_sorted_layout());

        let mut churned = DynamicGraph::new();
        for raw in [10u64, 11, 0, 1, 2, 3, 4, 5] {
            churned.add_node(id(raw), 1).unwrap();
        }
        churned.remove_node(id(10)).unwrap();
        churned.remove_node(id(11)).unwrap();
        assert!(!churned.id_sorted_layout());
        for raw in 0..5 {
            churned.set_out_slot(id(raw), 0, id(raw + 1)).unwrap();
        }
        assert_eq!(Snapshot::of(&monotone), Snapshot::of(&churned));
    }

    #[test]
    fn fast_path_survives_pure_removals() {
        // Removals without reuse leave the layout id-sorted; the fast path
        // must skip the vacated cells.
        let mut g = path_graph(6);
        g.remove_node(id(0)).unwrap();
        g.remove_node(id(3)).unwrap();
        assert!(g.id_sorted_layout());
        let snap = Snapshot::of(&g);
        assert_eq!(snap.ids(), &[id(1), id(2), id(4), id(5)]);
        assert_eq!(snap.edge_count(), 2); // 1-2 and 4-5 survive
    }

    #[test]
    fn sharded_build_matches_sequential_at_any_thread_count() {
        // A churned graph off the id-sorted fast path, with recycled cells,
        // multi-edges and isolated nodes.
        let mut g = DynamicGraph::new();
        for raw in 0..200u64 {
            g.add_node(id(raw), 3).unwrap();
        }
        for raw in 0..150u64 {
            g.set_out_slot(id(raw), 0, id((raw * 7 + 1) % 200)).unwrap();
            g.set_out_slot(id(raw), 1, id((raw * 13 + 2) % 200))
                .unwrap();
        }
        for raw in (0..200u64).step_by(9) {
            g.remove_node(id(raw)).unwrap();
        }
        for raw in 200..215u64 {
            g.add_node(id(raw), 1).unwrap();
        }
        assert!(!g.id_sorted_layout());
        let reference = Snapshot::of(&g);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                Snapshot::of_sharded(&g, threads),
                reference,
                "{threads} threads"
            );
        }
        // The public entry point falls back below the size cutoff.
        assert_eq!(Snapshot::of_with_threads(&g, 4), reference);
    }

    #[test]
    fn from_csr_parts_round_trips() {
        let reference = Snapshot::of(&path_graph(6));
        let rebuilt = Snapshot::from_csr_parts(
            reference.ids().to_vec(),
            reference.offsets.clone(),
            reference.adjacency.clone(),
        );
        assert_eq!(rebuilt, reference);
    }

    #[test]
    #[should_panic(expected = "offsets must have n + 1 entries")]
    fn from_csr_parts_rejects_malformed_shape() {
        let _ = Snapshot::from_csr_parts(vec![id(0), id(1)], vec![0], vec![]);
    }

    #[test]
    fn from_edges_ignores_self_loops_and_duplicates() {
        let snap = Snapshot::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3), (9, 1)]);
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.edge_count(), 2);
        assert_eq!(snap.neighbors_of(1), &[0, 3]);
        assert_eq!(snap.degree_of(2), 0);
    }
}
