//! Breadth-first traversal, connectivity and distance utilities over [`Snapshot`]s.
//!
//! Flooding over a *static* graph is exactly a breadth-first search: the set of
//! nodes informed after `k` rounds is the ball of radius `k` around the source.
//! The routines in this module provide that static picture (used by the paper's
//! Lemma B.1 baseline and by many tests), plus the connectivity diagnostics the
//! experiments report (component sizes, diameter estimates).

use std::collections::VecDeque;

use crate::Snapshot;

/// Distances (in hops) from a source to every node, `None` if unreachable.
///
/// Runs in `O(n + m)`.
///
/// # Panics
///
/// Panics if `source >= snapshot.len()`.
#[must_use]
pub fn bfs_distances(snapshot: &Snapshot, source: usize) -> Vec<Option<u32>> {
    assert!(source < snapshot.len(), "source index out of range");
    let mut dist: Vec<Option<u32>> = vec![None; snapshot.len()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in snapshot.neighbors_of(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The BFS layers around `source`: `layers[k]` contains the indices at distance
/// exactly `k`. Unreachable nodes appear in no layer.
///
/// # Panics
///
/// Panics if `source >= snapshot.len()`.
#[must_use]
pub fn bfs_layers(snapshot: &Snapshot, source: usize) -> Vec<Vec<usize>> {
    let dist = bfs_distances(snapshot, source);
    let max = dist.iter().flatten().copied().max().unwrap_or(0) as usize;
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, d) in dist.iter().enumerate() {
        if let Some(d) = d {
            layers[*d as usize].push(i);
        }
    }
    layers
}

/// Number of nodes reachable from `source` (including `source` itself).
///
/// # Panics
///
/// Panics if `source >= snapshot.len()`.
#[must_use]
pub fn reachable_count(snapshot: &Snapshot, source: usize) -> usize {
    bfs_distances(snapshot, source)
        .iter()
        .filter(|d| d.is_some())
        .count()
}

/// Connected-component labelling of the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component[i]` is the component label of node index `i` (labels are
    /// `0..count`, assigned in order of discovery from index 0 upwards).
    pub component: Vec<usize>,
    /// Size of every component, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component, or 0 for an empty graph.
    #[must_use]
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of nodes belonging to the largest component (0 for an empty graph).
    #[must_use]
    pub fn largest_fraction(&self) -> f64 {
        if self.component.is_empty() {
            0.0
        } else {
            self.largest() as f64 / self.component.len() as f64
        }
    }

    /// Returns `true` when the whole snapshot is a single connected component.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.count() <= 1
    }
}

/// Computes connected components in `O(n + m)`.
#[must_use]
pub fn connected_components(snapshot: &Snapshot) -> Components {
    let n = snapshot.len();
    let mut component = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let label = sizes.len();
        let mut size = 0usize;
        component[start] = label;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in snapshot.neighbors_of(u) {
                if component[v] == usize::MAX {
                    component[v] = label;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { component, sizes }
}

/// Eccentricity of `source` (largest finite BFS distance), ignoring unreachable
/// nodes. Returns 0 when `source` is isolated.
///
/// # Panics
///
/// Panics if `source >= snapshot.len()`.
#[must_use]
pub fn eccentricity(snapshot: &Snapshot, source: usize) -> u32 {
    bfs_distances(snapshot, source)
        .iter()
        .flatten()
        .copied()
        .max()
        .unwrap_or(0)
}

/// Exact diameter of the largest connected component, by all-pairs BFS.
///
/// Cost is `O(n · (n + m))`; intended for graphs up to a few thousand nodes
/// (tests, examples, small experiments). Returns 0 for an empty snapshot.
#[must_use]
pub fn diameter_exact(snapshot: &Snapshot) -> u32 {
    (0..snapshot.len())
        .map(|i| eccentricity(snapshot, i))
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Two BFS passes; exact on trees, a lower bound in
/// general.
///
/// # Panics
///
/// Panics if the snapshot is empty or `start >= snapshot.len()`.
#[must_use]
pub fn diameter_double_sweep(snapshot: &Snapshot, start: usize) -> u32 {
    let first = bfs_distances(snapshot, start);
    let farthest = first
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (i, d)))
        .max_by_key(|&(_, d)| d)
        .map_or(start, |(i, _)| i);
    eccentricity(snapshot, farthest)
}

/// Rounds a synchronous flooding/BFS process needs to reach every node reachable
/// from `source`; `None` if the snapshot is not connected (some node is never
/// reached). This is the static analogue of the paper's flooding time.
///
/// # Panics
///
/// Panics if `source >= snapshot.len()`.
#[must_use]
pub fn static_flooding_time(snapshot: &Snapshot, source: usize) -> Option<u32> {
    let dist = bfs_distances(snapshot, source);
    let mut max = 0;
    for d in &dist {
        match d {
            Some(d) => max = max.max(*d),
            None => return None,
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Snapshot {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Snapshot::from_edges(n, &edges)
    }

    fn two_triangles() -> Snapshot {
        Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let snap = path(5);
        let dist = bfs_distances(&snap, 0);
        assert_eq!(
            dist,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4)],
            "distances along a path are hop counts"
        );
    }

    #[test]
    fn bfs_layers_partition_reachable_nodes() {
        let snap = path(4);
        let layers = bfs_layers(&snap, 1);
        assert_eq!(layers[0], vec![1]);
        assert_eq!(layers[1], vec![0, 2]);
        assert_eq!(layers[2], vec![3]);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let snap = two_triangles();
        let dist = bfs_distances(&snap, 0);
        assert!(dist[3].is_none() && dist[4].is_none() && dist[5].is_none());
        assert_eq!(reachable_count(&snap, 0), 3);
    }

    #[test]
    fn connected_components_of_two_triangles() {
        let comps = connected_components(&two_triangles());
        assert_eq!(comps.count(), 2);
        assert_eq!(comps.sizes, vec![3, 3]);
        assert!(!comps.is_connected());
        assert!((comps.largest_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn connected_components_of_connected_graph() {
        let comps = connected_components(&path(6));
        assert_eq!(comps.count(), 1);
        assert!(comps.is_connected());
        assert_eq!(comps.largest(), 6);
    }

    #[test]
    fn components_of_empty_snapshot() {
        let comps = connected_components(&Snapshot::from_edges(0, &[]));
        assert_eq!(comps.count(), 0);
        assert_eq!(comps.largest(), 0);
        assert_eq!(comps.largest_fraction(), 0.0);
    }

    #[test]
    fn eccentricity_and_diameter_on_path() {
        let snap = path(5);
        assert_eq!(eccentricity(&snap, 0), 4);
        assert_eq!(eccentricity(&snap, 2), 2);
        assert_eq!(diameter_exact(&snap), 4);
        assert_eq!(diameter_double_sweep(&snap, 2), 4);
    }

    #[test]
    fn diameter_of_disconnected_graph_is_per_component() {
        let snap = two_triangles();
        assert_eq!(diameter_exact(&snap), 1);
    }

    #[test]
    fn static_flooding_time_matches_eccentricity_when_connected() {
        let snap = path(7);
        assert_eq!(static_flooding_time(&snap, 0), Some(6));
        assert_eq!(static_flooding_time(&snap, 3), Some(3));
        assert_eq!(static_flooding_time(&two_triangles(), 0), None);
    }

    #[test]
    fn isolated_source_floods_only_itself() {
        let snap = Snapshot::from_edges(3, &[(1, 2)]);
        assert_eq!(reachable_count(&snap, 0), 1);
        assert_eq!(eccentricity(&snap, 0), 0);
    }
}
