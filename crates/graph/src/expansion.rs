//! Vertex expansion: outer boundaries, exact isoperimetric numbers for small
//! graphs, and a candidate-set estimator for simulation-sized graphs.
//!
//! The paper's central structural quantity is the *vertex isoperimetric number*
//!
//! ```text
//! h_out(G) = min_{0 < |S| <= |N|/2}  |∂_out(S)| / |S|
//! ```
//!
//! where `∂_out(S)` is the set of nodes outside `S` adjacent to `S`
//! (Definition 3.1). Computing `h_out` exactly is NP-hard, so this module offers
//! two levels:
//!
//! * [`exact_isoperimetric`] enumerates all subsets — only feasible for graphs
//!   with at most ~22 nodes, used by tests to validate the estimator;
//! * [`ExpansionEstimator`] searches a structured family of candidate sets
//!   (connected components, BFS balls, spectral sweep prefixes, random sets,
//!   singletons) and reports the *worst* ratio found. Because it minimises over
//!   a subset of all sets it returns an **upper bound** on `h_out`; an estimate
//!   above the paper's 0.1 threshold is evidence (not proof) of expansion, while
//!   an estimate below the threshold is a genuine witness of poor expansion.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::traversal::connected_components;
use crate::{NodeId, Snapshot};

/// Outer boundary `∂_out(S)`: the nodes outside `S` with at least one neighbour
/// inside `S`. `set` contains node indices of the snapshot; duplicates are
/// ignored.
///
/// # Panics
///
/// Panics if any index in `set` is out of range.
#[must_use]
pub fn outer_boundary(snapshot: &Snapshot, set: &[usize]) -> Vec<usize> {
    let mut member = vec![false; snapshot.len()];
    for &i in set {
        member[i] = true;
    }
    let mut boundary = vec![false; snapshot.len()];
    for &i in set {
        for &j in snapshot.neighbors_of(i) {
            if !member[j] {
                boundary[j] = true;
            }
        }
    }
    boundary
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect()
}

/// Size of the outer boundary of `set` (deduplicated member indices assumed not
/// required; duplicates are ignored).
#[must_use]
pub fn outer_boundary_size(snapshot: &Snapshot, set: &[usize]) -> usize {
    outer_boundary(snapshot, set).len()
}

/// The expansion ratio `|∂_out(S)| / |S|` of a set of node indices.
///
/// Returns `None` for an empty set.
#[must_use]
pub fn expansion_of(snapshot: &Snapshot, set: &[usize]) -> Option<f64> {
    let distinct: HashSet<usize> = set.iter().copied().collect();
    if distinct.is_empty() {
        return None;
    }
    let members: Vec<usize> = distinct.iter().copied().collect();
    let boundary = outer_boundary_size(snapshot, &members);
    Some(boundary as f64 / members.len() as f64)
}

/// Which candidate family produced an expansion witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateFamily {
    /// A whole connected component of size at most `n/2` (ratio is always 0).
    Component,
    /// A single vertex.
    Singleton,
    /// A BFS ball around a sampled source.
    BfsBall,
    /// A prefix of the approximate-Fiedler-vector ordering.
    SpectralSweep,
    /// A uniformly random subset.
    RandomSet,
    /// A caller-supplied set (e.g. the informed set of a flooding process).
    Custom,
}

impl std::fmt::Display for CandidateFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CandidateFamily::Component => "component",
            CandidateFamily::Singleton => "singleton",
            CandidateFamily::BfsBall => "bfs-ball",
            CandidateFamily::SpectralSweep => "spectral-sweep",
            CandidateFamily::RandomSet => "random-set",
            CandidateFamily::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// The worst (smallest-ratio) candidate set found by an expansion search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionWitness {
    /// Size `|S|` of the witness set.
    pub size: usize,
    /// Size `|∂_out(S)|` of its outer boundary.
    pub boundary: usize,
    /// The ratio `boundary / size`.
    pub ratio: f64,
    /// Which family of candidate sets produced the witness.
    pub family: CandidateFamily,
}

/// Result of an [`ExpansionEstimator`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionEstimate {
    /// The worst candidate found, or `None` when no candidate fell inside the
    /// requested size range (e.g. an empty graph).
    pub worst: Option<ExpansionWitness>,
    /// Number of candidate sets evaluated.
    pub candidates_evaluated: usize,
}

impl ExpansionEstimate {
    /// The estimated vertex expansion (upper bound on `h_out` restricted to the
    /// requested size range), or `None` when nothing was evaluated.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.worst.as_ref().map(|w| w.ratio)
    }

    /// Convenience: `true` when the estimate is at least `threshold` (i.e. no
    /// candidate with a worse ratio was found).
    #[must_use]
    pub fn at_least(&self, threshold: f64) -> bool {
        self.value().is_some_and(|v| v >= threshold)
    }
}

/// Exact isoperimetric result for small graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactExpansion {
    /// `h_out(G)`.
    pub value: f64,
    /// A minimising set (node indices).
    pub witness: Vec<usize>,
}

/// Maximum graph size accepted by [`exact_isoperimetric`].
pub const EXACT_EXPANSION_LIMIT: usize = 22;

/// Exact vertex isoperimetric number by exhaustive subset enumeration.
///
/// Returns `None` if the graph is empty, has a single node (no valid `S` with
/// `|S| <= n/2` exists when `n = 1` gives `n/2 = 0`), or has more than
/// [`EXACT_EXPANSION_LIMIT`] nodes.
#[must_use]
pub fn exact_isoperimetric(snapshot: &Snapshot) -> Option<ExactExpansion> {
    let n = snapshot.len();
    if !(2..=EXACT_EXPANSION_LIMIT).contains(&n) {
        return None;
    }
    let half = n / 2;
    let mut best: Option<ExactExpansion> = None;
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size > half {
            continue;
        }
        let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let ratio = outer_boundary_size(snapshot, &set) as f64 / size as f64;
        let better = best.as_ref().is_none_or(|b| ratio < b.value);
        if better {
            best = Some(ExactExpansion {
                value: ratio,
                witness: set,
            });
        }
    }
    best
}

/// Configuration of the candidate-set expansion estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionConfig {
    /// Number of BFS-ball source vertices sampled.
    pub bfs_sources: usize,
    /// Number of random set sizes sampled from the requested range.
    pub random_size_samples: usize,
    /// Number of random sets drawn per sampled size.
    pub random_sets_per_size: usize,
    /// Whether to run the spectral sweep.
    pub spectral_sweep: bool,
    /// Power-iteration steps for the spectral ordering.
    pub spectral_iterations: usize,
    /// Whether to consider whole small connected components as candidates.
    pub include_components: bool,
    /// Whether to consider singletons (all of them if `n` is small, a sample
    /// otherwise).
    pub include_singletons: bool,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            bfs_sources: 32,
            random_size_samples: 8,
            random_sets_per_size: 16,
            spectral_sweep: true,
            spectral_iterations: 60,
            include_components: true,
            include_singletons: true,
        }
    }
}

impl ExpansionConfig {
    /// A cheaper configuration for use inside benchmarks and large sweeps.
    #[must_use]
    pub fn fast() -> Self {
        ExpansionConfig {
            bfs_sources: 8,
            random_size_samples: 4,
            random_sets_per_size: 4,
            spectral_sweep: true,
            spectral_iterations: 25,
            include_components: true,
            include_singletons: true,
        }
    }
}

/// Candidate-set minimiser producing an upper bound on the vertex expansion of a
/// snapshot, restricted to sets whose size lies in a caller-chosen range.
///
/// # Example
///
/// ```
/// use churn_graph::expansion::{ExpansionConfig, ExpansionEstimator};
/// use churn_graph::generators;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = generators::d_out_random_graph(200, 4, &mut rng);
/// let snap = churn_graph::Snapshot::of(&g);
/// let est = ExpansionEstimator::new(ExpansionConfig::fast())
///     .estimate(&snap, 1, snap.len() / 2, &mut rng);
/// assert!(est.value().unwrap() > 0.0, "a 4-out random graph expands");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExpansionEstimator {
    config: ExpansionConfig,
}

impl ExpansionEstimator {
    /// Creates an estimator with the given configuration.
    #[must_use]
    pub fn new(config: ExpansionConfig) -> Self {
        ExpansionEstimator { config }
    }

    /// Access to the configuration.
    #[must_use]
    pub fn config(&self) -> &ExpansionConfig {
        &self.config
    }

    /// Estimates the minimum expansion ratio over sets with
    /// `min_size <= |S| <= max_size` (the latter additionally capped at `n/2`).
    ///
    /// Returns an estimate whose [`ExpansionEstimate::worst`] is `None` when the
    /// effective size range is empty.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        snapshot: &Snapshot,
        min_size: usize,
        max_size: usize,
        rng: &mut R,
    ) -> ExpansionEstimate {
        let n = snapshot.len();
        let min_size = min_size.max(1);
        let max_size = max_size.min(n / 2);
        let mut state = SearchState::new(n, min_size, max_size);
        if n == 0 || min_size > max_size {
            return state.finish();
        }

        if self.config.include_components {
            self.component_candidates(snapshot, &mut state);
        }
        if self.config.include_singletons && min_size == 1 {
            self.singleton_candidates(snapshot, rng, &mut state);
        }
        self.bfs_ball_candidates(snapshot, rng, &mut state);
        if self.config.spectral_sweep {
            self.spectral_candidates(snapshot, rng, &mut state);
        }
        self.random_candidates(snapshot, rng, &mut state);

        state.finish()
    }

    fn component_candidates(&self, snapshot: &Snapshot, state: &mut SearchState) {
        let comps = connected_components(snapshot);
        for label in 0..comps.count() {
            let size = comps.sizes[label];
            if size < state.min_size || size > state.max_size {
                continue;
            }
            let set: Vec<usize> = comps
                .component
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| (c == label).then_some(i))
                .collect();
            state.consider(snapshot, &set, CandidateFamily::Component);
        }
    }

    fn singleton_candidates<R: Rng + ?Sized>(
        &self,
        snapshot: &Snapshot,
        rng: &mut R,
        state: &mut SearchState,
    ) {
        let n = snapshot.len();
        if n <= 4096 {
            for i in 0..n {
                state.consider(snapshot, &[i], CandidateFamily::Singleton);
            }
        } else {
            for _ in 0..4096 {
                let i = rng.gen_range(0..n);
                state.consider(snapshot, &[i], CandidateFamily::Singleton);
            }
        }
    }

    fn bfs_ball_candidates<R: Rng + ?Sized>(
        &self,
        snapshot: &Snapshot,
        rng: &mut R,
        state: &mut SearchState,
    ) {
        let n = snapshot.len();
        for _ in 0..self.config.bfs_sources {
            let source = rng.gen_range(0..n);
            let layers = crate::traversal::bfs_layers(snapshot, source);
            // Grow the ball layer by layer inside one incremental sweep:
            // evaluating every ball of one source costs O(n + m) total, not
            // O(n) per ball.
            state.begin();
            let mut len = 0usize;
            for layer in layers {
                len += layer.len();
                if len > state.max_size {
                    break;
                }
                for &v in &layer {
                    state.push(snapshot, v);
                }
                state.record(CandidateFamily::BfsBall);
            }
        }
    }

    fn spectral_candidates<R: Rng + ?Sized>(
        &self,
        snapshot: &Snapshot,
        rng: &mut R,
        state: &mut SearchState,
    ) {
        let order = spectral_order(snapshot, self.config.spectral_iterations, rng);
        // Sweep prefixes from both ends of the ordering, each end as one
        // incremental sweep (O(n + m) for all prefixes of an ordering — the
        // classic sweep cut — instead of O(n) per prefix, which is what
        // makes the estimator usable at n = 10^6).
        for dir in 0..2 {
            let iter: Box<dyn Iterator<Item = &usize>> = if dir == 0 {
                Box::new(order.iter())
            } else {
                Box::new(order.iter().rev())
            };
            state.begin();
            for &i in iter {
                if state.size + 1 > state.max_size {
                    break;
                }
                state.push(snapshot, i);
                state.record(CandidateFamily::SpectralSweep);
            }
        }
    }

    fn random_candidates<R: Rng + ?Sized>(
        &self,
        snapshot: &Snapshot,
        rng: &mut R,
        state: &mut SearchState,
    ) {
        let n = snapshot.len();
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.random_size_samples {
            let size = if state.min_size >= state.max_size {
                state.min_size
            } else {
                rng.gen_range(state.min_size..=state.max_size)
            };
            for _ in 0..self.config.random_sets_per_size {
                indices.shuffle(rng);
                let set = &indices[..size];
                state.consider(snapshot, set, CandidateFamily::RandomSet);
            }
        }
    }
}

/// The estimator's search accumulator: tracks the worst witness found and
/// maintains an **incremental** boundary sweep. The member/boundary flag
/// arrays are allocated once per estimate and reset by undoing only the flags
/// the previous candidate touched, so evaluating a candidate costs
/// `O(Δ · d)` in the number of newly added vertices — the prefix families
/// (BFS balls, spectral sweeps) evaluate *all* their prefixes in one
/// `O(n + m)` pass instead of `O(n)` per prefix. That asymptotic change is
/// what scales the estimator from `n ≈ 10^4` to `n = 10^6`.
struct SearchState {
    min_size: usize,
    max_size: usize,
    worst: Option<ExpansionWitness>,
    evaluated: usize,
    /// `member[v]` — v is in the current candidate set S.
    member: Vec<bool>,
    /// `in_boundary[v]` — v is in ∂_out(S).
    in_boundary: Vec<bool>,
    /// Every vertex whose flag was set by the current sweep (for O(Δ) reset).
    touched: Vec<usize>,
    /// |S| of the current sweep.
    size: usize,
    /// |∂_out(S)| of the current sweep.
    boundary: usize,
}

impl SearchState {
    fn new(n: usize, min_size: usize, max_size: usize) -> Self {
        SearchState {
            min_size,
            max_size,
            worst: None,
            evaluated: 0,
            member: vec![false; n],
            in_boundary: vec![false; n],
            touched: Vec::new(),
            size: 0,
            boundary: 0,
        }
    }

    /// Starts a fresh candidate sweep, undoing only the previous one's flags.
    fn begin(&mut self) {
        for &v in &self.touched {
            self.member[v] = false;
            self.in_boundary[v] = false;
        }
        self.touched.clear();
        self.size = 0;
        self.boundary = 0;
    }

    /// Adds `v` to the current candidate set, maintaining the boundary:
    /// `v` leaves the boundary if it was in it, and each of its neighbours
    /// outside the set joins it. Duplicate pushes are ignored.
    fn push(&mut self, snapshot: &Snapshot, v: usize) {
        if self.member[v] {
            return;
        }
        if self.in_boundary[v] {
            self.in_boundary[v] = false;
            self.boundary -= 1;
        } else {
            self.touched.push(v);
        }
        self.member[v] = true;
        self.size += 1;
        for &u in snapshot.neighbors_of(v) {
            if !self.member[u] && !self.in_boundary[u] {
                self.in_boundary[u] = true;
                self.boundary += 1;
                self.touched.push(u);
            }
        }
    }

    /// Records the current sweep state as a candidate if its size is in range.
    fn record(&mut self, family: CandidateFamily) {
        if self.size < self.min_size || self.size > self.max_size || self.size == 0 {
            return;
        }
        self.evaluated += 1;
        let ratio = self.boundary as f64 / self.size as f64;
        if self.worst.as_ref().is_none_or(|w| ratio < w.ratio) {
            self.worst = Some(ExpansionWitness {
                size: self.size,
                boundary: self.boundary,
                ratio,
                family,
            });
        }
    }

    /// One-shot evaluation of an explicit (duplicate-free) candidate set.
    fn consider(&mut self, snapshot: &Snapshot, set: &[usize], family: CandidateFamily) {
        if set.is_empty() || set.len() < self.min_size || set.len() > self.max_size {
            return;
        }
        self.begin();
        for &v in set {
            self.push(snapshot, v);
        }
        self.record(family);
    }

    fn finish(self) -> ExpansionEstimate {
        ExpansionEstimate {
            worst: self.worst,
            candidates_evaluated: self.evaluated,
        }
    }
}

/// Evaluates a caller-supplied candidate set (e.g. an informed set from a
/// flooding run) against an existing estimate, returning the combined worst
/// witness. Useful for tightening estimates with sets the process itself
/// produced.
#[must_use]
pub fn refine_with_custom_set(
    snapshot: &Snapshot,
    estimate: ExpansionEstimate,
    set: &[usize],
) -> ExpansionEstimate {
    let distinct: Vec<usize> = {
        let s: HashSet<usize> = set.iter().copied().collect();
        s.into_iter().collect()
    };
    if distinct.is_empty() || distinct.len() > snapshot.len() / 2 {
        return estimate;
    }
    let boundary = outer_boundary_size(snapshot, &distinct);
    let ratio = boundary as f64 / distinct.len() as f64;
    let mut out = estimate;
    out.candidates_evaluated += 1;
    if out.worst.as_ref().is_none_or(|w| ratio < w.ratio) {
        out.worst = Some(ExpansionWitness {
            size: distinct.len(),
            boundary,
            ratio,
            family: CandidateFamily::Custom,
        });
    }
    out
}

/// Orders vertices by an approximation of the Fiedler vector of the lazy
/// random-walk matrix, computed by power iteration with deflation of the
/// stationary distribution. Ties (and isolated vertices) are broken by index.
///
/// The ordering is the standard "sweep" heuristic: low-conductance cuts tend to
/// appear as prefixes of this ordering, which is how the estimator finds
/// weakly-connected node subsets in the models without edge regeneration.
#[must_use]
pub fn spectral_order<R: Rng + ?Sized>(
    snapshot: &Snapshot,
    iterations: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = snapshot.len();
    if n == 0 {
        return Vec::new();
    }
    let degrees: Vec<f64> = (0..n).map(|i| snapshot.degree_of(i) as f64).collect();
    let total_degree: f64 = degrees.iter().sum();

    // Random start vector, orthogonalised against the stationary distribution.
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

    for _ in 0..iterations.max(1) {
        deflate(&mut x, &degrees, total_degree);
        // y = (I + P) / 2 * x  with P the random-walk matrix D^{-1} A;
        // isolated vertices keep their value (pure laziness).
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let neigh = snapshot.neighbors_of(i);
            if neigh.is_empty() {
                y[i] = x[i];
                continue;
            }
            let avg: f64 = neigh.iter().map(|&j| x[j]).sum::<f64>() / neigh.len() as f64;
            y[i] = 0.5 * x[i] + 0.5 * avg;
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Degenerate (e.g. graph with no edges): fall back to index order.
            return (0..n).collect();
        }
        for v in &mut y {
            *v /= norm;
        }
        x = y;
    }
    deflate(&mut x, &degrees, total_degree);

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Removes the component of `x` along the stationary distribution π ∝ degree
/// (the top eigenvector of the random-walk matrix).
fn deflate(x: &mut [f64], degrees: &[f64], total_degree: f64) {
    if total_degree <= 0.0 {
        // No edges: deflate against the uniform vector instead.
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        for v in x.iter_mut() {
            *v -= mean;
        }
        return;
    }
    // π-weighted projection: <x, 1>_π = Σ π_i x_i, with π_i = deg_i / total.
    let proj: f64 = x
        .iter()
        .zip(degrees)
        .map(|(v, d)| v * d / total_degree)
        .sum();
    for v in x.iter_mut() {
        *v -= proj;
    }
}

/// Census of isolated nodes of a snapshot (degree 0), as node identifiers.
#[must_use]
pub fn isolated_nodes(snapshot: &Snapshot) -> Vec<NodeId> {
    snapshot
        .isolated_indices()
        .into_iter()
        .map(|i| snapshot.id_of(i))
        .collect()
}

/// Fraction of nodes of the snapshot that are isolated (0 for an empty graph).
#[must_use]
pub fn isolated_fraction(snapshot: &Snapshot) -> f64 {
    if snapshot.is_empty() {
        0.0
    } else {
        snapshot.isolated_indices().len() as f64 / snapshot.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn outer_boundary_of_path_interior() {
        let snap = Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(outer_boundary(&snap, &[2]), vec![1, 3]);
        assert_eq!(outer_boundary(&snap, &[0, 1]), vec![2]);
        assert_eq!(outer_boundary(&snap, &[0, 1, 2, 3, 4]), Vec::<usize>::new());
    }

    #[test]
    fn expansion_of_handles_duplicates_and_empty_sets() {
        let snap = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(expansion_of(&snap, &[]), None);
        let with_dup = expansion_of(&snap, &[1, 1]).unwrap();
        assert!(
            (with_dup - 2.0).abs() < 1e-12,
            "singleton {{1}} has boundary 2"
        );
    }

    #[test]
    fn exact_isoperimetric_of_complete_graph() {
        // K4: every subset S has boundary N \ S, so h = min over |S|<=2 of (4-|S|)/|S| = 1 at |S|=2.
        let snap = Snapshot::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let exact = exact_isoperimetric(&snap).unwrap();
        assert!((exact.value - 1.0).abs() < 1e-12);
        assert_eq!(exact.witness.len(), 2);
    }

    #[test]
    fn exact_isoperimetric_of_disconnected_graph_is_zero() {
        let snap = Snapshot::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let exact = exact_isoperimetric(&snap).unwrap();
        assert_eq!(exact.value, 0.0);
        assert!(exact.witness.len() <= 3);
    }

    #[test]
    fn exact_isoperimetric_of_path_is_one_over_half() {
        // Path of 6: the first half {0,1,2} has boundary {3}: ratio 1/3.
        let snap = Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let exact = exact_isoperimetric(&snap).unwrap();
        assert!((exact.value - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_isoperimetric_rejects_large_and_trivial_graphs() {
        assert!(exact_isoperimetric(&Snapshot::from_edges(1, &[])).is_none());
        assert!(exact_isoperimetric(&Snapshot::from_edges(0, &[])).is_none());
        let big = Snapshot::from_edges(EXACT_EXPANSION_LIMIT + 1, &[]);
        assert!(exact_isoperimetric(&big).is_none());
    }

    #[test]
    fn estimator_agrees_with_exact_on_small_graphs() {
        let mut r = rng();
        // Barbell-ish graph: two K4s joined by one edge — clear bottleneck.
        let mut edges = Vec::new();
        for i in 0..4usize {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((3, 4));
        let snap = Snapshot::from_edges(8, &edges);
        let exact = exact_isoperimetric(&snap).unwrap();
        let est = ExpansionEstimator::new(ExpansionConfig::default()).estimate(
            &snap,
            1,
            snap.len() / 2,
            &mut r,
        );
        let est_value = est.value().unwrap();
        assert!(
            est_value >= exact.value - 1e-12,
            "estimator is an upper bound on h_out"
        );
        assert!(
            est_value <= exact.value + 1e-9,
            "on an 8-node graph with spectral sweep the bottleneck {{one K4}} must be found: \
             est {est_value} vs exact {}",
            exact.value
        );
    }

    #[test]
    fn estimator_finds_isolated_vertex() {
        let mut r = rng();
        let snap = Snapshot::from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let est = ExpansionEstimator::new(ExpansionConfig::default()).estimate(&snap, 1, 5, &mut r);
        assert_eq!(est.value(), Some(0.0), "nodes 5..9 are isolated");
    }

    #[test]
    fn estimator_respects_size_range() {
        let mut r = rng();
        // Ring of 20 plus 2 isolated vertices; restricted to sets of size >= 5 the
        // isolated singletons are out of range but {isolated, isolated, ...} random
        // sets can still witness small boundaries — the point here is only that
        // min_size filters singletons.
        let mut edges: Vec<(usize, usize)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
        edges.push((20, 21));
        let snap = Snapshot::from_edges(22, &edges);
        let est =
            ExpansionEstimator::new(ExpansionConfig::default()).estimate(&snap, 5, 11, &mut r);
        if let Some(w) = &est.worst {
            assert!(w.size >= 5 && w.size <= 11);
        }
    }

    #[test]
    fn estimator_on_empty_and_tiny_graphs() {
        let mut r = rng();
        let empty = Snapshot::from_edges(0, &[]);
        let est = ExpansionEstimator::default().estimate(&empty, 1, 10, &mut r);
        assert!(est.worst.is_none());
        assert_eq!(est.candidates_evaluated, 0);

        let single = Snapshot::from_edges(1, &[]);
        let est = ExpansionEstimator::default().estimate(&single, 1, 10, &mut r);
        assert!(est.worst.is_none(), "n=1 has no sets of size <= n/2 = 0");
    }

    #[test]
    fn d_out_random_graph_expands_ring_does_not() {
        let mut r = rng();
        let g = generators::d_out_random_graph(400, 4, &mut r);
        let snap = Snapshot::of(&g);
        let est = ExpansionEstimator::new(ExpansionConfig::fast()).estimate(
            &snap,
            1,
            snap.len() / 2,
            &mut r,
        );
        let random_value = est.value().unwrap();

        let ring_edges: Vec<(usize, usize)> = (0..400).map(|i| (i, (i + 1) % 400)).collect();
        let ring = Snapshot::from_edges(400, &ring_edges);
        let ring_est = ExpansionEstimator::new(ExpansionConfig::fast()).estimate(
            &ring,
            1,
            ring.len() / 2,
            &mut r,
        );
        let ring_value = ring_est.value().unwrap();
        assert!(
            random_value > ring_value,
            "random 4-out graph ({random_value}) should out-expand the ring ({ring_value})"
        );
        assert!(ring_value < 0.1, "a long ring is a poor vertex expander");
    }

    #[test]
    fn incremental_sweep_matches_outer_boundary() {
        let mut r = rng();
        let g = generators::d_out_random_graph(120, 3, &mut r);
        let snap = Snapshot::of(&g);
        let mut state = SearchState::new(snap.len(), 1, snap.len() / 2);
        let mut indices: Vec<usize> = (0..snap.len()).collect();
        for _ in 0..20 {
            indices.shuffle(&mut r);
            let size = r.gen_range(1..=snap.len() / 2);
            let set = &indices[..size];
            state.begin();
            for &v in set {
                state.push(&snap, v);
            }
            assert_eq!(state.size, size);
            assert_eq!(
                state.boundary,
                outer_boundary_size(&snap, set),
                "incremental boundary must match the from-scratch count"
            );
        }
        // Duplicate pushes are ignored.
        state.begin();
        state.push(&snap, 0);
        state.push(&snap, 0);
        assert_eq!(state.size, 1);
    }

    #[test]
    fn refine_with_custom_set_can_lower_estimate() {
        let snap = Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let base = ExpansionEstimate {
            worst: Some(ExpansionWitness {
                size: 1,
                boundary: 2,
                ratio: 2.0,
                family: CandidateFamily::Singleton,
            }),
            candidates_evaluated: 1,
        };
        let refined = refine_with_custom_set(&snap, base, &[0, 1, 2]);
        let worst = refined.worst.unwrap();
        assert_eq!(worst.ratio, 0.0);
        assert_eq!(worst.family, CandidateFamily::Custom);
    }

    #[test]
    fn spectral_order_separates_two_cliques() {
        let mut r = rng();
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j));
                edges.push((i + 5, j + 5));
            }
        }
        edges.push((0, 5));
        let snap = Snapshot::from_edges(10, &edges);
        let order = spectral_order(&snap, 200, &mut r);
        // The first five entries of the ordering should be one of the two cliques.
        let first: HashSet<usize> = order[..5].iter().copied().collect();
        let clique_a: HashSet<usize> = (0..5).collect();
        let clique_b: HashSet<usize> = (5..10).collect();
        assert!(
            first == clique_a || first == clique_b,
            "spectral sweep should isolate one clique, got {first:?}"
        );
    }

    #[test]
    fn isolated_census_counts_degree_zero_nodes() {
        let snap = Snapshot::from_edges(5, &[(0, 1)]);
        let isolated = isolated_nodes(&snap);
        assert_eq!(isolated.len(), 3);
        assert!((isolated_fraction(&snap) - 0.6).abs() < 1e-12);
        assert_eq!(isolated_fraction(&Snapshot::from_edges(0, &[])), 0.0);
    }
}
