//! Property-based tests for the dynamic graph substrate.
//!
//! These exercise the core invariants of [`churn_graph::DynamicGraph`] under
//! arbitrary interleavings of joins, leaves and rewirings — exactly the kind of
//! operation sequences the churn models generate — plus structural identities of
//! snapshots, traversal and expansion.

use std::collections::HashSet;

use churn_graph::expansion::{
    exact_isoperimetric, expansion_of, outer_boundary, ExpansionConfig, ExpansionEstimator,
};
use churn_graph::traversal::{bfs_distances, connected_components};
use churn_graph::{DynamicGraph, NodeId, Snapshot};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random mutation applied to the graph under test.
#[derive(Debug, Clone)]
enum Op {
    Add {
        out_degree: usize,
    },
    Remove {
        victim: usize,
    },
    Rewire {
        owner: usize,
        slot: usize,
        target: usize,
    },
    Clear {
        owner: usize,
        slot: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6).prop_map(|out_degree| Op::Add { out_degree }),
        (0usize..64).prop_map(|victim| Op::Remove { victim }),
        (0usize..64, 0usize..6, 0usize..64).prop_map(|(owner, slot, target)| Op::Rewire {
            owner,
            slot,
            target
        }),
        (0usize..64, 0usize..6).prop_map(|(owner, slot)| Op::Clear { owner, slot }),
    ]
}

/// Applies a sequence of operations, ignoring rejected ones (the point is the
/// invariant check, not that every random op is valid).
fn apply_ops(ops: &[Op]) -> DynamicGraph {
    let mut g = DynamicGraph::new();
    let mut alive: Vec<NodeId> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Add { out_degree } => {
                let id = NodeId::new(next_id);
                next_id += 1;
                g.add_node(id, *out_degree).expect("fresh id");
                alive.push(id);
            }
            Op::Remove { victim } => {
                if alive.is_empty() {
                    continue;
                }
                let idx = victim % alive.len();
                let id = alive.swap_remove(idx);
                g.remove_node(id).expect("alive node");
            }
            Op::Rewire {
                owner,
                slot,
                target,
            } => {
                if alive.len() < 2 {
                    continue;
                }
                let o = alive[owner % alive.len()];
                let t = alive[target % alive.len()];
                if o == t {
                    continue;
                }
                let slots = g.out_slot_count(o).unwrap_or(0);
                if slots == 0 {
                    continue;
                }
                g.set_out_slot(o, slot % slots, t).expect("valid rewire");
            }
            Op::Clear { owner, slot } => {
                if alive.is_empty() {
                    continue;
                }
                let o = alive[owner % alive.len()];
                let slots = g.out_slot_count(o).unwrap_or(0);
                if slots == 0 {
                    continue;
                }
                g.clear_out_slot(o, slot % slots).expect("valid clear");
            }
        }
    }
    g
}

/// An obviously-correct identifier-keyed mirror of the out-slot semantics,
/// used to cross-check the slab implementation (including index recycling).
#[derive(Debug, Default)]
struct NaiveGraph {
    nodes: std::collections::BTreeMap<NodeId, Vec<Option<NodeId>>>,
}

impl NaiveGraph {
    fn add(&mut self, id: NodeId, out_degree: usize) {
        self.nodes.insert(id, vec![None; out_degree]);
    }

    fn set(&mut self, owner: NodeId, slot: usize, target: NodeId) {
        self.nodes.get_mut(&owner).unwrap()[slot] = Some(target);
    }

    fn clear(&mut self, owner: NodeId, slot: usize) {
        self.nodes.get_mut(&owner).unwrap()[slot] = None;
    }

    fn remove(&mut self, id: NodeId) {
        self.nodes.remove(&id);
        for slots in self.nodes.values_mut() {
            for slot in slots.iter_mut() {
                if *slot == Some(id) {
                    *slot = None;
                }
            }
        }
    }

    fn sorted_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    fn out_slots(&self, id: NodeId) -> Vec<Option<NodeId>> {
        self.nodes[&id].clone()
    }

    fn filled_slot_count(&self) -> usize {
        self.nodes
            .values()
            .map(|slots| slots.iter().flatten().count())
            .sum()
    }

    fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.nodes[&id].iter().flatten().copied().collect();
        for (&other, slots) in &self.nodes {
            if slots.iter().flatten().any(|&t| t == id) {
                out.push(other);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn in_request_count(&self, id: NodeId) -> usize {
        self.nodes
            .values()
            .map(|slots| slots.iter().flatten().filter(|&&t| t == id).count())
            .sum()
    }

    fn is_isolated(&self, id: NodeId) -> bool {
        self.neighbors(id).is_empty()
    }

    fn distinct_edge_count(&self) -> usize {
        let mut edges: HashSet<(NodeId, NodeId)> = HashSet::new();
        for (&u, slots) in &self.nodes {
            for &v in slots.iter().flatten() {
                edges.insert(if u <= v { (u, v) } else { (v, u) });
            }
        }
        edges.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of operations, the internal bookkeeping (in-reference
    /// multisets, filled-slot counter, absence of dangling references) stays
    /// consistent.
    #[test]
    fn graph_invariants_hold_under_arbitrary_churn(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let g = apply_ops(&ops);
        g.assert_invariants();
    }

    /// Adjacency is symmetric: `has_edge(u, v) == has_edge(v, u)` for all pairs.
    #[test]
    fn adjacency_is_symmetric(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let g = apply_ops(&ops);
        let ids = g.sorted_node_ids();
        for &u in &ids {
            for &v in &ids {
                prop_assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    /// A snapshot faithfully reflects the graph: same node set, symmetric
    /// deduplicated adjacency, degrees matching the graph's distinct-neighbour
    /// counts.
    #[test]
    fn snapshot_matches_graph(ops in proptest::collection::vec(op_strategy(), 0..150)) {
        let g = apply_ops(&ops);
        let snap = Snapshot::of(&g);
        prop_assert_eq!(snap.len(), g.len());
        prop_assert_eq!(snap.edge_count(), g.distinct_edge_count());
        for &id in snap.ids() {
            prop_assert_eq!(snap.degree(id), g.degree(id));
            let from_snap: HashSet<NodeId> = snap.neighbors(id).unwrap().into_iter().collect();
            let from_graph: HashSet<NodeId> = g.neighbors(id).unwrap().into_iter().collect();
            prop_assert_eq!(from_snap, from_graph);
        }
    }

    /// The sum of component sizes equals the node count, and BFS from any node
    /// reaches exactly its component.
    #[test]
    fn components_partition_nodes(ops in proptest::collection::vec(op_strategy(), 0..150)) {
        let g = apply_ops(&ops);
        let snap = Snapshot::of(&g);
        let comps = connected_components(&snap);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), snap.len());
        if !snap.is_empty() {
            let dist = bfs_distances(&snap, 0);
            let reached = dist.iter().filter(|d| d.is_some()).count();
            prop_assert_eq!(reached, comps.sizes[comps.component[0]]);
        }
    }

    /// The outer boundary is disjoint from the set and every boundary node has a
    /// neighbour inside the set.
    #[test]
    fn outer_boundary_is_sound(
        ops in proptest::collection::vec(op_strategy(), 0..120),
        picks in proptest::collection::vec(0usize..64, 1..16),
    ) {
        let g = apply_ops(&ops);
        let snap = Snapshot::of(&g);
        if snap.is_empty() {
            return Ok(());
        }
        let set: Vec<usize> = picks.iter().map(|p| p % snap.len()).collect();
        let members: HashSet<usize> = set.iter().copied().collect();
        let boundary = outer_boundary(&snap, &set);
        for &b in &boundary {
            prop_assert!(!members.contains(&b), "boundary node inside the set");
            let has_inside_neighbor = snap.neighbors_of(b).iter().any(|j| members.contains(j));
            prop_assert!(has_inside_neighbor, "boundary node without inside neighbour");
        }
        // Ratio is consistent with the raw boundary size.
        let ratio = expansion_of(&snap, &set).unwrap();
        prop_assert!((ratio - boundary.len() as f64 / members.len() as f64).abs() < 1e-12);
    }

    /// The slab graph agrees with a naive identifier-keyed reference under
    /// arbitrary add/remove/rewire/clear interleavings — including after slab
    /// cells have been vacated and recycled for new nodes, which is where a
    /// stale dense index or unrecycled in-reference would show up.
    #[test]
    fn slab_recycling_matches_naive_reference(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut g = DynamicGraph::new();
        let mut reference = NaiveGraph::default();
        let mut alive: Vec<NodeId> = Vec::new();
        let mut next_id = 0u64;
        let mut peak_alive = 0usize;
        for op in &ops {
            match op {
                Op::Add { out_degree } => {
                    let id = NodeId::new(next_id);
                    next_id += 1;
                    g.add_node(id, *out_degree).expect("fresh id");
                    reference.add(id, *out_degree);
                    alive.push(id);
                    peak_alive = peak_alive.max(alive.len());
                }
                Op::Remove { victim } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let id = alive.swap_remove(victim % alive.len());
                    let removed = g.remove_node(id).expect("alive node");
                    reference.remove(id);
                    // The dense dangling view names the same slots.
                    prop_assert_eq!(removed.dangling_dense.len(), removed.dangling_slots.len());
                    for (edge_slot, &(owner_idx, slot)) in
                        removed.dangling_slots.iter().zip(&removed.dangling_dense)
                    {
                        prop_assert_eq!(g.id_at(owner_idx), Some(edge_slot.owner));
                        prop_assert_eq!(edge_slot.slot, slot);
                    }
                }
                Op::Rewire { owner, slot, target } => {
                    if alive.len() < 2 {
                        continue;
                    }
                    let o = alive[owner % alive.len()];
                    let t = alive[target % alive.len()];
                    if o == t {
                        continue;
                    }
                    let slots = g.out_slot_count(o).unwrap_or(0);
                    if slots == 0 {
                        continue;
                    }
                    g.set_out_slot(o, slot % slots, t).expect("valid rewire");
                    reference.set(o, slot % slots, t);
                }
                Op::Clear { owner, slot } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let o = alive[owner % alive.len()];
                    let slots = g.out_slot_count(o).unwrap_or(0);
                    if slots == 0 {
                        continue;
                    }
                    g.clear_out_slot(o, slot % slots).expect("valid clear");
                    reference.clear(o, slot % slots);
                }
            }
            g.assert_invariants();
        }

        // Recycling really happened: the arena never outgrows the peak
        // concurrent population, no matter how many nodes ever existed.
        prop_assert!(g.slab_len() <= peak_alive.max(1) || g.slab_len() == 0,
            "slab length {} exceeds peak alive population {}", g.slab_len(), peak_alive);

        // Full structural agreement with the reference.
        prop_assert_eq!(g.sorted_node_ids(), reference.sorted_ids());
        prop_assert_eq!(g.filled_slot_count(), reference.filled_slot_count());
        prop_assert_eq!(g.distinct_edge_count(), reference.distinct_edge_count());
        for &id in &reference.sorted_ids() {
            prop_assert_eq!(g.out_slots(id).unwrap(), reference.out_slots(id));
            prop_assert_eq!(g.neighbors(id).unwrap(), reference.neighbors(id));
            prop_assert_eq!(g.degree(id).unwrap(), reference.neighbors(id).len());
            prop_assert_eq!(g.in_request_count(id).unwrap(), reference.in_request_count(id));
            prop_assert_eq!(g.is_isolated(id).unwrap(), reference.is_isolated(id));
        }
        let snap = Snapshot::of(&g);
        prop_assert_eq!(snap.len(), reference.sorted_ids().len());
        prop_assert_eq!(snap.edge_count(), reference.distinct_edge_count());
    }

    /// On small graphs, the candidate-set estimator never reports a value below
    /// the exact isoperimetric number (it is an upper bound), and with the
    /// default configuration it finds the exact optimum often enough that it
    /// never exceeds it by more than a factor accounted for by candidate-family
    /// coverage on graphs with <= 10 nodes.
    #[test]
    fn estimator_upper_bounds_exact_h_out(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        seed in any::<u64>(),
    ) {
        let g = apply_ops(&ops);
        let snap = Snapshot::of(&g);
        if snap.len() < 2 || snap.len() > 10 {
            return Ok(());
        }
        let exact = exact_isoperimetric(&snap).expect("small graph");
        let mut rng = StdRng::seed_from_u64(seed);
        let est = ExpansionEstimator::new(ExpansionConfig::default())
            .estimate(&snap, 1, snap.len() / 2, &mut rng);
        let value = est.value().expect("non-empty graph yields candidates");
        prop_assert!(value >= exact.value - 1e-9,
            "estimator {} must not undercut exact {}", value, exact.value);
    }
}
