//! Instrumentation layer for the churn workspace.
//!
//! Two pieces, both observers rather than participants:
//!
//! - **Phase profiling.** Engine code opens named wall-clock spans
//!   ([`span`], re-exported from the vendored `tracing` facade) around its
//!   phases — churn sweeps, flooding sweeps, snapshot maintenance, event
//!   loops. [`PhaseProfiler`] is a [`Subscriber`] that aggregates the closed
//!   spans per name; the scenario runner attaches one per cell with
//!   [`subscriber::with_default`] and folds the totals into the `.load.jsonl`
//!   side file.
//! - **Per-round time series.** [`RoundSeries`] is a column-oriented buffer
//!   measurements fill with one value per named column per round; the
//!   scenario runner streams it to a `.series.jsonl` side file keyed by the
//!   cell's deterministic seed.
//!
//! When nothing is attached, every emission site costs one relaxed atomic
//! load and one branch — no clock read, no allocation. The counting-allocator
//! and golden-trajectory tests elsewhere in the workspace pin that contract.

pub use tracing::{counter, enabled, span, subscriber, Level, Span, Subscriber};

use std::sync::Mutex;

/// Aggregates closed spans and counters by name, preserving first-appearance
/// order so profiles print in execution order.
///
/// One profiler is attached per scenario cell via
/// [`subscriber::with_default`]; its totals become the `phases` breakdown in
/// the cell's load record. Interior mutability is a [`Mutex`] because the
/// [`Subscriber`] trait takes `&self` and must be `Sync`; contention is nil
/// (a thread-scoped profiler only ever hears from its own thread).
#[derive(Default)]
pub struct PhaseProfiler {
    inner: Mutex<ProfilerState>,
}

#[derive(Default)]
struct ProfilerState {
    /// (name, total nanoseconds, close count) in first-appearance order.
    spans: Vec<(&'static str, u64, u64)>,
    /// (name, total) in first-appearance order.
    counters: Vec<(&'static str, u64)>,
}

impl PhaseProfiler {
    /// A fresh, empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total seconds per span name, in first-appearance order.
    #[must_use]
    pub fn phases(&self) -> Vec<(&'static str, f64)> {
        let state = self.inner.lock().unwrap();
        state
            .spans
            .iter()
            .map(|&(name, nanos, _)| (name, nanos as f64 / 1e9))
            .collect()
    }

    /// Number of times each span closed, in first-appearance order.
    #[must_use]
    pub fn span_counts(&self) -> Vec<(&'static str, u64)> {
        let state = self.inner.lock().unwrap();
        state
            .spans
            .iter()
            .map(|&(name, _, count)| (name, count))
            .collect()
    }

    /// Counter totals, in first-appearance order.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let state = self.inner.lock().unwrap();
        state.counters.clone()
    }

    /// True when no span ever closed and no counter ever fired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let state = self.inner.lock().unwrap();
        state.spans.is_empty() && state.counters.is_empty()
    }
}

impl Subscriber for PhaseProfiler {
    fn span_close(&self, name: &'static str, nanos: u64) {
        let mut state = self.inner.lock().unwrap();
        if let Some(entry) = state.spans.iter_mut().find(|e| e.0 == name) {
            entry.1 = entry.1.saturating_add(nanos);
            entry.2 += 1;
        } else {
            state.spans.push((name, nanos, 1));
        }
    }

    fn counter(&self, name: &'static str, value: u64) {
        let mut state = self.inner.lock().unwrap();
        if let Some(entry) = state.counters.iter_mut().find(|e| e.0 == name) {
            entry.1 = entry.1.saturating_add(value);
        } else {
            state.counters.push((name, value));
        }
    }
}

/// A column-oriented per-round time series for one scenario cell.
///
/// Columns are declared up front (or on first push) and hold one `f64` per
/// round; all columns must stay the same length, which [`push_round`]
/// enforces by taking a full row at a time.
///
/// [`push_round`]: RoundSeries::push_round
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundSeries {
    columns: Vec<(&'static str, Vec<f64>)>,
}

impl RoundSeries {
    /// An empty series with no columns.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty series with named columns declared up front.
    #[must_use]
    pub fn with_columns(names: &[&'static str]) -> Self {
        Self {
            columns: names.iter().map(|&n| (n, Vec::new())).collect(),
        }
    }

    /// Appends one round: `row` pairs each column name with its value for
    /// this round. Missing columns are created (back-filled with NaN for
    /// prior rounds); columns absent from `row` get NaN for this round, so
    /// every column always has exactly one value per round.
    pub fn push_round(&mut self, row: &[(&'static str, f64)]) {
        let len = self.len();
        for &(name, _) in row {
            if !self.columns.iter().any(|(n, _)| *n == name) {
                self.columns.push((name, vec![f64::NAN; len]));
            }
        }
        for (name, values) in &mut self.columns {
            let v = row
                .iter()
                .find(|(n, _)| n == name)
                .map_or(f64::NAN, |&(_, v)| v);
            values.push(v);
        }
    }

    /// Number of rounds recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, |(_, v)| v.len())
    }

    /// True when no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The columns: `(name, one value per round)`.
    #[must_use]
    pub fn columns(&self) -> &[(&'static str, Vec<f64>)] {
        &self.columns
    }

    /// The values of the named column, if present.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn profiler_aggregates_spans_in_first_appearance_order() {
        let profiler = Arc::new(PhaseProfiler::new());
        subscriber::with_default(profiler.clone(), || {
            {
                let _a = span("churn");
            }
            {
                let _b = span("sweep");
            }
            {
                let _a = span("churn");
            }
            counter("events", 10);
            counter("events", 5);
            counter("drops", 1);
        });
        let phases = profiler.phases();
        assert_eq!(
            phases.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec!["churn", "sweep"]
        );
        assert!(phases.iter().all(|&(_, s)| s >= 0.0));
        assert_eq!(profiler.span_counts(), vec![("churn", 2), ("sweep", 1)]);
        assert_eq!(profiler.counters(), vec![("events", 15), ("drops", 1)]);
        assert!(!profiler.is_empty());
    }

    #[test]
    fn detached_profiler_records_nothing() {
        let profiler = PhaseProfiler::new();
        {
            let _s = span("unheard");
        }
        assert!(profiler.is_empty());
    }

    #[test]
    fn series_rows_keep_columns_aligned() {
        let mut series = RoundSeries::with_columns(&["informed", "alive"]);
        series.push_round(&[("informed", 0.1), ("alive", 100.0)]);
        series.push_round(&[("informed", 0.4), ("alive", 99.0), ("lost", 2.0)]);
        series.push_round(&[("informed", 1.0)]);
        assert_eq!(series.len(), 3);
        assert_eq!(series.column("informed"), Some(&[0.1, 0.4, 1.0][..]));
        assert_eq!(series.column("alive").unwrap()[1], 99.0);
        assert!(series.column("alive").unwrap()[2].is_nan());
        let lost = series.column("lost").unwrap();
        assert!(lost[0].is_nan());
        assert_eq!(lost[1], 2.0);
        assert!(lost[2].is_nan());
    }

    #[test]
    fn empty_series_reports_empty() {
        let series = RoundSeries::new();
        assert!(series.is_empty());
        assert_eq!(series.len(), 0);
        assert!(series.column("x").is_none());
    }
}
